//! The public entry point: pick a [`Method`], run it on a graph, get
//! exact BC scores plus a full simulation report.

use crate::brandes;
use crate::methods::cost::footprint;
use crate::methods::models::{
    DirectionOptimizingModel, EdgeParallelModel, GpuFanModel, HybridModel, HybridParams,
    SamplingParams, SamplingPhaseModel, TraversalMode, VertexParallelModel, WorkEfficientModel,
};
use crate::parallel::{self, ShardableCostModel};
use crate::schedule::Schedule;
use crate::teps;
use bc_gpusim::{coarse_grained_makespan, DeviceConfig, DeviceMemory, KernelCounters, SimError};
use bc_graph::{Csr, VertexId};
use bc_metrics::{HardwareSummary, MetricsSummary, RootMetrics, RunMetrics, WorkerMetrics};
use serde::{Deserialize, Serialize};

/// Roll the run-wide kernel counters up into the hardware summary a
/// metered report embeds.
fn hardware_summary(counters: &KernelCounters, device: &DeviceConfig) -> HardwareSummary {
    HardwareSummary {
        kernel_launches: counters.kernel_launches(),
        warp_steps: counters.warp_steps,
        warp_efficiency: counters.warp_efficiency(device),
        memory_transactions: counters.memory_transactions(device),
        atomics: counters.atomics,
        seconds: counters.seconds,
    }
}

/// Run one sharded multi-root phase under the run's [`Schedule`],
/// collecting per-root and per-worker metrics into the streams when
/// `METERED` (the unmetered instantiation calls the plain runner,
/// whose hooks compile out). `phase` stamps the worker records so
/// multi-batch methods (Sampling) keep their batches apart.
#[allow(clippy::too_many_arguments)]
fn run_phase<M: ShardableCostModel, const METERED: bool>(
    g: &Csr,
    device: &DeviceConfig,
    roots: &[VertexId],
    threads: usize,
    schedule: Schedule,
    phase: u64,
    model: &mut M,
    metrics: &mut Vec<RootMetrics>,
    workers: &mut Vec<WorkerMetrics>,
) -> Result<parallel::RootsRun, SimError> {
    if METERED {
        let (run, phase_metrics, mut phase_workers) =
            parallel::run_roots_scheduled_metered(g, device, roots, threads, schedule, model)?;
        for w in &mut phase_workers {
            w.phase = phase;
        }
        metrics.extend(phase_metrics);
        workers.extend(phase_workers);
        Ok(run)
    } else {
        parallel::run_roots_scheduled(g, device, roots, threads, schedule, model)
    }
}

/// Effective host↔device link bandwidth used to price out-of-core
/// slice swaps (PCIe 3.0 x16 after protocol overhead): the transfer
/// cost that makes partitioned execution *possible* but visibly
/// slower than a resident graph, as any out-of-core scheme is.
const HOST_LINK_BYTES_PER_SEC: f64 = 12.0e9;

/// How a graph whose CSR plus local state exceeds one simulated
/// device's memory is handled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionMode {
    /// Fail the pre-flight with [`SimError::OutOfMemory`] — the
    /// historical behavior, and the honest answer for methods whose
    /// *local* state is the thing that explodes (GPU-FAN's O(n²)
    /// predecessor matrix gains nothing from streaming the graph).
    #[default]
    Off,
    /// Split the CSR into contiguous vertex-range slices
    /// ([`Csr::vertex_slices`]) that fit beside the local arrays and
    /// stream them through the device, one resident at a time. The
    /// functional search is unchanged — scores stay bitwise identical
    /// to a fully resident run — while every level pays to re-stream
    /// its non-resident slices over the host link.
    Auto,
}

/// The out-of-core execution plan: how the CSR was cut and what one
/// level's slice traffic costs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PartitionPlan {
    /// Contiguous vertex ranges, one per slice, covering the graph.
    pub slices: Vec<(VertexId, VertexId)>,
    /// Device bytes of the largest slice (the resident set).
    pub resident_bytes: u64,
    /// Bytes re-streamed over the host link per kernel launch — every
    /// non-resident slice once.
    pub swap_bytes_per_level: u64,
}

impl PartitionPlan {
    /// Cut `g` for a device with `budget` graph bytes (capacity minus
    /// local arrays). Returns `None` when `budget` cannot hold even
    /// the largest single adjacency row, or when no cut is needed.
    pub fn plan(g: &Csr, budget: u64) -> Option<PartitionPlan> {
        let slices = g.vertex_slices(budget)?;
        if slices.len() < 2 {
            return None;
        }
        let resident_bytes = slices
            .iter()
            .map(|&(lo, hi)| g.slice_bytes(lo, hi))
            .max()
            .unwrap_or(0);
        let total: u64 = slices.iter().map(|&(lo, hi)| g.slice_bytes(lo, hi)).sum();
        PartitionPlan {
            swap_bytes_per_level: total - total / slices.len() as u64,
            resident_bytes,
            slices,
        }
        .into()
    }

    /// Number of slices.
    pub fn num_slices(&self) -> usize {
        self.slices.len()
    }

    /// Host-link seconds one root's search spends swapping slices: a
    /// search of depth `d` launches `d + 1` forward and `d` backward
    /// levels, each re-streaming the non-resident slices.
    pub fn root_swap_seconds(&self, max_depth: u32) -> f64 {
        let launches = 2 * max_depth as u64 + 1;
        launches as f64 * self.swap_bytes_per_level as f64 / HOST_LINK_BYTES_PER_SEC
    }
}

/// A graceful-degradation decision the pre-flight ladder took to keep
/// a memory-starved run alive instead of erroring. Recorded in
/// [`RunReport::degradation`] (and the cluster report) so the caller
/// always sees *how* the answer was obtained.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Degradation {
    /// The run only completed by streaming the CSR out-of-core
    /// ([`PartitionMode::Auto`] engaged on the ladder's first rung).
    Partitioned {
        /// Number of graph slices streamed through the device.
        slices: usize,
    },
    /// The run fell back to adaptive-sampling approximation: `sources`
    /// roots processed with `method`, scores scaled by `n / sources`,
    /// accurate to within `error_bound` (additive, on normalized
    /// scores, at 90% confidence — see [`crate::approx::error_bound`]).
    Sampled {
        /// Method that actually ran the sampled roots.
        method: String,
        /// Number of sampled source vertices.
        sources: usize,
        /// Hoeffding-style additive error bound on normalized scores.
        error_bound: f64,
    },
}

impl Degradation {
    /// Short human-readable label ("partitioned" / "sampled").
    pub fn kind(&self) -> &'static str {
        match self {
            Degradation::Partitioned { .. } => "partitioned",
            Degradation::Sampled { .. } => "sampled",
        }
    }
}

/// Run `method`, degrading along the declared ladder instead of
/// failing when the device cannot hold the requested configuration:
///
/// 1. **As requested.** If it completes (or fails for any reason other
///    than [`SimError::OutOfMemory`]), that result stands.
/// 2. **Partition.** If the request had [`PartitionMode::Off`], retry
///    with [`PartitionMode::Auto`]; success is recorded as
///    [`Degradation::Partitioned`].
/// 3. **Sample.** Approximate with [`crate::approx::approximate_bc`]
///    (512 strided sources, deterministic), trying the requested
///    method first and then progressively leaner ones
///    (work-efficient → edge-parallel → vertex-parallel) until one
///    fits; recorded as [`Degradation::Sampled`] with its error bound.
///
/// Only when every rung fails does the original `OutOfMemory` error
/// surface.
pub fn run_or_degrade(g: &Csr, method: &Method, opts: &BcOptions) -> Result<BcRun, SimError> {
    let first = match method.run(g, opts) {
        Ok(run) => return Ok(run),
        Err(e @ SimError::OutOfMemory { .. }) => e,
        Err(e) => return Err(e),
    };

    // Rung 1: partition the graph if the caller had not already.
    if opts.partition == PartitionMode::Off {
        let partitioned = BcOptions {
            partition: PartitionMode::Auto,
            ..opts.clone()
        };
        match method.run(g, &partitioned) {
            Ok(mut run) => {
                let slices = run
                    .report
                    .partition
                    .as_ref()
                    .map_or(1, PartitionPlan::num_slices);
                run.report.degradation = Some(Degradation::Partitioned { slices });
                return Ok(run);
            }
            Err(SimError::OutOfMemory { .. }) => {}
            Err(e) => return Err(e),
        }
    }

    // Rung 2: adaptive-sampling approximation on the leanest method
    // that fits. Partitioning stays enabled so the CSR itself can
    // still stream.
    let n = g.num_vertices();
    let k = crate::approx::DEGRADED_SAMPLE_SOURCES.min(n.max(1));
    let sample_opts = BcOptions {
        partition: PartitionMode::Auto,
        ..opts.clone()
    };
    let mut fallbacks: Vec<Method> = vec![method.clone()];
    for lean in [
        Method::WorkEfficient,
        Method::EdgeParallel,
        Method::VertexParallel,
    ] {
        if fallbacks.iter().all(|m| m.name() != lean.name()) {
            fallbacks.push(lean);
        }
    }
    for fallback in &fallbacks {
        match crate::approx::approximate_bc(g, fallback, k, 0, &sample_opts) {
            Ok(mut run) => {
                run.report.degradation = Some(Degradation::Sampled {
                    method: fallback.name().to_owned(),
                    sources: k,
                    error_bound: crate::approx::error_bound(n, k, 0.1),
                });
                return Ok(run);
            }
            Err(SimError::OutOfMemory { .. }) => continue,
            Err(e) => return Err(e),
        }
    }
    Err(first)
}

/// Which source vertices to process.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RootSelection {
    /// Every vertex — the exact BC computation.
    All,
    /// The first `k` vertices.
    FirstK(usize),
    /// `k` vertices evenly strided across the id range (deterministic
    /// and representative; what the experiment harness uses before
    /// extrapolating, per §IV-C's uniform-cost argument).
    Strided(usize),
    /// An explicit root list.
    Explicit(Vec<VertexId>),
}

impl RootSelection {
    /// Materialize the root list for a graph of `n` vertices.
    pub fn resolve(&self, n: usize) -> Vec<VertexId> {
        match self {
            RootSelection::All => (0..n as u32).collect(),
            RootSelection::FirstK(k) => (0..n.min(*k) as u32).collect(),
            RootSelection::Strided(k) => {
                let k = (*k).min(n).max(1.min(n));
                (0..k).map(|i| (i * n / k) as u32).collect()
            }
            RootSelection::Explicit(v) => v.clone(),
        }
    }
}

/// Options shared by every method.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BcOptions {
    /// The simulated device.
    pub device: DeviceConfig,
    /// Source vertices to process.
    pub roots: RootSelection,
    /// Normalize scores by `(n-1)(n-2)` (halved when undirected).
    pub normalize: bool,
    /// Host threads driving the multi-root runner (0 = auto: the
    /// `RAYON_NUM_THREADS` environment variable, else all available
    /// cores). Results are bitwise identical at any setting.
    pub threads: usize,
    /// Forward-sweep traversal direction for the frontier-queue
    /// methods (work-efficient, hybrid, and sampling's work-efficient
    /// phases). `Auto` engages the Beamer switch; scores are bitwise
    /// identical in every mode. The dense methods (vertex-parallel,
    /// edge-parallel, GPU-FAN) have no frontier to pull from and
    /// ignore this.
    pub traversal: TraversalMode,
    /// How root shards are assigned to host threads (static blocks,
    /// guided shrinking chunks, or work-stealing deques). Scores are
    /// bitwise identical under every schedule — the assignment is
    /// dynamic, the merge order is not.
    pub schedule: Schedule,
    /// Out-of-core handling for graphs that exceed device memory
    /// (default [`PartitionMode::Off`]: fail the pre-flight exactly
    /// as before).
    pub partition: PartitionMode,
}

impl Default for BcOptions {
    fn default() -> Self {
        BcOptions {
            device: DeviceConfig::gtx_titan(),
            roots: RootSelection::All,
            normalize: false,
            threads: 0,
            traversal: TraversalMode::Push,
            schedule: Schedule::Static,
            partition: PartitionMode::Off,
        }
    }
}

/// The parallelization strategies evaluated in the paper.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Method {
    /// Thread per vertex, O(n²+m) traversal (Jia et al.).
    VertexParallel,
    /// Thread per edge, O(diameter·m) traversal (Jia et al.) — the
    /// best prior GPU method and the paper's baseline.
    EdgeParallel,
    /// Fine-grained edge-parallel with O(n²) predecessor storage
    /// (Shi & Zhang).
    GpuFan,
    /// Explicit-queue frontier traversal (this paper, Algorithms
    /// 1–3).
    WorkEfficient,
    /// Per-iteration strategy switching on frontier deltas (this
    /// paper, Algorithm 4).
    Hybrid(HybridParams),
    /// Depth-sampling strategy selection (this paper, Algorithm 5).
    Sampling(SamplingParams),
}

impl Method {
    /// Human-readable method name (matches the paper's terminology).
    pub fn name(&self) -> &'static str {
        match self {
            Method::VertexParallel => "vertex-parallel",
            Method::EdgeParallel => "edge-parallel",
            Method::GpuFan => "gpu-fan",
            Method::WorkEfficient => "work-efficient",
            Method::Hybrid(_) => "hybrid",
            Method::Sampling(_) => "sampling",
        }
    }

    /// All six methods with default parameters.
    pub fn all() -> Vec<Method> {
        vec![
            Method::VertexParallel,
            Method::EdgeParallel,
            Method::GpuFan,
            Method::WorkEfficient,
            Method::Hybrid(HybridParams::default()),
            Method::Sampling(SamplingParams::default()),
        ]
    }

    /// Does this method use fine-grained parallelism (the whole
    /// device cooperating on one root)?
    pub fn is_fine_grained(&self) -> bool {
        matches!(self, Method::GpuFan)
    }

    /// Device bytes needed for the method's local state.
    pub fn local_bytes(&self, g: &Csr, device: &DeviceConfig) -> u64 {
        match self {
            Method::VertexParallel | Method::EdgeParallel => {
                footprint::edge_parallel_bytes(g, device)
            }
            Method::GpuFan => footprint::gpu_fan_bytes(g, device),
            Method::WorkEfficient | Method::Hybrid(_) | Method::Sampling(_) => {
                footprint::work_efficient_bytes(g, device)
            }
        }
    }

    /// Run the method. Fails with [`SimError::OutOfMemory`] when the
    /// graph plus local state exceed device memory (GPU-FAN's fate
    /// at scale).
    pub fn run(&self, g: &Csr, opts: &BcOptions) -> Result<BcRun, SimError> {
        self.run_impl::<false>(g, opts).map(|(run, _)| run)
    }

    /// [`Method::run`] with the metrics layer engaged: additionally
    /// returns the per-root level records and embeds their aggregate
    /// (plus the hardware roll-up) in `report.metrics`. Everything
    /// else in the returned [`BcRun`] — scores and every priced
    /// timing — is bitwise identical to [`Method::run`]'s output,
    /// because the metrics sink only observes values the engine
    /// already computed.
    pub fn run_metered(&self, g: &Csr, opts: &BcOptions) -> Result<(BcRun, RunMetrics), SimError> {
        self.run_impl::<true>(g, opts)
            .map(|(run, metrics)| (run, metrics.expect("metered run collects metrics")))
    }

    fn run_impl<const METERED: bool>(
        &self,
        g: &Csr,
        opts: &BcOptions,
    ) -> Result<(BcRun, Option<RunMetrics>), SimError> {
        let n = g.num_vertices();
        let device = &opts.device;
        let roots = opts.roots.resolve(n);

        // Memory pre-flight. When the CSR does not fit beside the
        // local arrays and partitioning is enabled, cut the graph
        // into resident slices instead of failing; only the largest
        // slice occupies device memory at a time.
        let mut mem = DeviceMemory::new(device.global_mem_bytes);
        let local_bytes = self.local_bytes(g, device);
        let graph_bytes = footprint::graph_bytes(g);
        let partition = (opts.partition == PartitionMode::Auto
            && graph_bytes.saturating_add(local_bytes) > device.global_mem_bytes)
            .then(|| PartitionPlan::plan(g, device.global_mem_bytes.saturating_sub(local_bytes)))
            .flatten();
        match &partition {
            Some(plan) => {
                let _locals = mem.alloc(local_bytes, "per-run local arrays")?;
                let _resident = mem.alloc(plan.resident_bytes, "resident graph slice")?;
            }
            None => {
                let _graph = mem.alloc(graph_bytes, "graph CSR arrays")?;
                let _locals = mem.alloc(local_bytes, "per-run local arrays")?;
            }
        }

        let mut scores = vec![0.0f64; n];
        let mut per_root_seconds = Vec::with_capacity(roots.len());
        let mut counters = KernelCounters::default();
        let mut max_depths = Vec::with_capacity(roots.len());
        let mut strategy_iterations: Option<(u64, u64)> = None;
        let mut traversal_iterations: Option<(u64, u64)> = None;
        let mut sampling_chose_edge_parallel = None;
        // Per-root metric records, in phase order (the same order the
        // per-root vectors concatenate in). Stays empty unmetered.
        let mut metrics_stream: Vec<RootMetrics> = Vec::new();
        // Per-worker scheduling records, stamped with the phase index.
        let mut workers_stream: Vec<WorkerMetrics> = Vec::new();

        // Absorb one sharded multi-root phase into the run-wide
        // aggregates: scores add elementwise (phases touch the same
        // vector), the per-root vectors concatenate in phase order —
        // exactly the layout the old sequential loop produced.
        fn absorb(
            run: parallel::RootsRun,
            scores: &mut [f64],
            per_root_seconds: &mut Vec<f64>,
            max_depths: &mut Vec<u32>,
            counters: &mut KernelCounters,
        ) {
            for (dst, src) in scores.iter_mut().zip(&run.scores) {
                *dst += *src;
            }
            per_root_seconds.extend_from_slice(&run.per_root_seconds);
            max_depths.extend_from_slice(&run.max_depths);
            counters.merge(&run.counters);
        }

        let threads = opts.threads;
        let schedule = opts.schedule;
        match self {
            Method::VertexParallel => {
                let mut m = VertexParallelModel::default();
                let run = run_phase::<_, METERED>(
                    g,
                    device,
                    &roots,
                    threads,
                    schedule,
                    0,
                    &mut m,
                    &mut metrics_stream,
                    &mut workers_stream,
                )?;
                absorb(
                    run,
                    &mut scores,
                    &mut per_root_seconds,
                    &mut max_depths,
                    &mut counters,
                );
            }
            Method::EdgeParallel => {
                let mut m = EdgeParallelModel;
                let run = run_phase::<_, METERED>(
                    g,
                    device,
                    &roots,
                    threads,
                    schedule,
                    0,
                    &mut m,
                    &mut metrics_stream,
                    &mut workers_stream,
                )?;
                absorb(
                    run,
                    &mut scores,
                    &mut per_root_seconds,
                    &mut max_depths,
                    &mut counters,
                );
            }
            Method::GpuFan => {
                let mut m = GpuFanModel;
                let run = run_phase::<_, METERED>(
                    g,
                    device,
                    &roots,
                    threads,
                    schedule,
                    0,
                    &mut m,
                    &mut metrics_stream,
                    &mut workers_stream,
                )?;
                absorb(
                    run,
                    &mut scores,
                    &mut per_root_seconds,
                    &mut max_depths,
                    &mut counters,
                );
            }
            Method::WorkEfficient => {
                if opts.traversal == TraversalMode::Push {
                    // The historical path, bitwise-unchanged in both
                    // scores and pricing.
                    let mut m = WorkEfficientModel::default();
                    let run = run_phase::<_, METERED>(
                        g,
                        device,
                        &roots,
                        threads,
                        schedule,
                        0,
                        &mut m,
                        &mut metrics_stream,
                        &mut workers_stream,
                    )?;
                    absorb(
                        run,
                        &mut scores,
                        &mut per_root_seconds,
                        &mut max_depths,
                        &mut counters,
                    );
                } else {
                    let mut m = DirectionOptimizingModel::new(opts.traversal);
                    let run = run_phase::<_, METERED>(
                        g,
                        device,
                        &roots,
                        threads,
                        schedule,
                        0,
                        &mut m,
                        &mut metrics_stream,
                        &mut workers_stream,
                    )?;
                    absorb(
                        run,
                        &mut scores,
                        &mut per_root_seconds,
                        &mut max_depths,
                        &mut counters,
                    );
                    traversal_iterations = Some((m.push_iterations, m.pull_iterations));
                }
            }
            Method::Hybrid(params) => {
                let mut m = HybridModel::new(*params).with_traversal(opts.traversal);
                let run = run_phase::<_, METERED>(
                    g,
                    device,
                    &roots,
                    threads,
                    schedule,
                    0,
                    &mut m,
                    &mut metrics_stream,
                    &mut workers_stream,
                )?;
                absorb(
                    run,
                    &mut scores,
                    &mut per_root_seconds,
                    &mut max_depths,
                    &mut counters,
                );
                strategy_iterations =
                    Some((m.work_efficient_iterations, m.edge_parallel_iterations));
                if opts.traversal != TraversalMode::Push {
                    // Pushed forward levels = everything the push
                    // strategies priced minus the backward sweeps,
                    // which the report does not split; expose the
                    // launch counts the model does track.
                    traversal_iterations = Some((
                        m.work_efficient_iterations + m.edge_parallel_iterations,
                        m.bottom_up_iterations,
                    ));
                }
            }
            Method::Sampling(params) => {
                // Phase 1: sample roots work-efficiently, recording
                // max BFS depths (Algorithm 5's keys). The sampling
                // phases honor the traversal mode; the edge-parallel
                // phase streams all edges and has no frontier to
                // pull from, so it always pushes.
                let n_samps = params.n_samps.min(roots.len());
                let (sample_roots, rest_roots) = roots.split_at(n_samps);
                let mut we = DirectionOptimizingModel::new(opts.traversal);
                let run = run_phase::<_, METERED>(
                    g,
                    device,
                    sample_roots,
                    threads,
                    schedule,
                    0,
                    &mut we,
                    &mut metrics_stream,
                    &mut workers_stream,
                )?;
                absorb(
                    run,
                    &mut scores,
                    &mut per_root_seconds,
                    &mut max_depths,
                    &mut counters,
                );
                let mut keys = max_depths.clone();
                let use_ep = params.choose_edge_parallel(n, &mut keys);
                sampling_chose_edge_parallel = Some(use_ep);
                // Phase 2: remaining roots with the chosen strategy.
                if use_ep {
                    let mut m = SamplingPhaseModel::new(params.min_frontier);
                    let run = run_phase::<_, METERED>(
                        g,
                        device,
                        rest_roots,
                        threads,
                        schedule,
                        1,
                        &mut m,
                        &mut metrics_stream,
                        &mut workers_stream,
                    )?;
                    absorb(
                        run,
                        &mut scores,
                        &mut per_root_seconds,
                        &mut max_depths,
                        &mut counters,
                    );
                    strategy_iterations =
                        Some((m.work_efficient_iterations, m.edge_parallel_iterations));
                } else {
                    let run = run_phase::<_, METERED>(
                        g,
                        device,
                        rest_roots,
                        threads,
                        schedule,
                        1,
                        &mut we,
                        &mut metrics_stream,
                        &mut workers_stream,
                    )?;
                    absorb(
                        run,
                        &mut scores,
                        &mut per_root_seconds,
                        &mut max_depths,
                        &mut counters,
                    );
                }
                if opts.traversal != TraversalMode::Push {
                    traversal_iterations = Some((we.push_iterations, we.pull_iterations));
                }
            }
        }

        brandes::halve_if_symmetric(g, &mut scores);
        if opts.normalize {
            brandes::normalize(&mut scores, g.is_symmetric());
        }

        // Out-of-core surcharge: each launch of a partitioned root
        // streams the non-resident slices over the host link, so the
        // swap time lands on every root's block time (and through it
        // on the makespan and the full-graph extrapolation).
        if let Some(plan) = &partition {
            for (secs, &depth) in per_root_seconds.iter_mut().zip(&max_depths) {
                *secs += plan.root_swap_seconds(depth);
            }
        }

        let device_seconds = if self.is_fine_grained() {
            per_root_seconds.iter().sum()
        } else {
            coarse_grained_makespan(&per_root_seconds, device.num_sms)
        };
        let full_seconds = if roots.is_empty() {
            0.0
        } else {
            device_seconds * n as f64 / roots.len() as f64
        };
        let teps = teps::teps_bc(g.num_undirected_edges(), n as u64, full_seconds);

        let run_metrics = METERED.then(|| {
            let summary =
                MetricsSummary::from_roots(&metrics_stream, hardware_summary(&counters, device));
            RunMetrics {
                per_root: metrics_stream,
                per_worker: workers_stream,
                summary,
            }
        });
        Ok((
            BcRun {
                scores,
                report: RunReport {
                    method: self.name().to_owned(),
                    device: device.name.clone(),
                    vertices: n,
                    edges: g.num_undirected_edges(),
                    roots_processed: roots.len(),
                    device_seconds,
                    full_seconds,
                    teps,
                    counters,
                    per_root_seconds,
                    max_depths,
                    strategy_iterations,
                    traversal_iterations,
                    sampling_chose_edge_parallel,
                    metrics: run_metrics.as_ref().map(|m| m.summary),
                    partition,
                    degradation: None,
                },
            },
            run_metrics,
        ))
    }
}

/// Run BC under an arbitrary [`ShardableCostModel`] with
/// coarse-grained scheduling — the extension point for design-variant
/// studies (the §IV-A ablations build
/// `WorkEfficientModel::with_config` variants and price them here).
/// `local_bytes` is the variant's device-memory footprint beyond the
/// graph arrays. Roots are sharded across `opts.threads` host threads
/// like [`Method::run`].
pub fn run_with_cost_model<M: ShardableCostModel>(
    g: &Csr,
    opts: &BcOptions,
    model: &mut M,
    local_bytes: u64,
) -> Result<BcRun, SimError> {
    let n = g.num_vertices();
    let device = &opts.device;
    let roots = opts.roots.resolve(n);

    let mut mem = DeviceMemory::new(device.global_mem_bytes);
    let _graph = mem.alloc(footprint::graph_bytes(g), "graph CSR arrays")?;
    let _locals = mem.alloc(local_bytes, "per-run local arrays")?;

    let run = parallel::run_roots_scheduled(g, device, &roots, opts.threads, opts.schedule, model)?;
    let parallel::RootsRun {
        mut scores,
        per_root_seconds,
        max_depths,
        counters,
    } = run;
    brandes::halve_if_symmetric(g, &mut scores);
    if opts.normalize {
        brandes::normalize(&mut scores, g.is_symmetric());
    }
    let device_seconds = coarse_grained_makespan(&per_root_seconds, device.num_sms);
    let full_seconds = if roots.is_empty() {
        0.0
    } else {
        device_seconds * n as f64 / roots.len() as f64
    };
    let teps = teps::teps_bc(g.num_undirected_edges(), n as u64, full_seconds);
    Ok(BcRun {
        scores,
        report: RunReport {
            method: "custom".to_owned(),
            device: device.name.clone(),
            vertices: n,
            edges: g.num_undirected_edges(),
            roots_processed: roots.len(),
            device_seconds,
            full_seconds,
            teps,
            counters,
            per_root_seconds,
            max_depths,
            strategy_iterations: None,
            traversal_iterations: None,
            sampling_chose_edge_parallel: None,
            metrics: None,
            partition: None,
            degradation: None,
        },
    })
}

/// Scores plus simulation report.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BcRun {
    /// BC contributions from the processed roots (exact BC when
    /// `RootSelection::All`).
    pub scores: Vec<f64>,
    /// What the simulated device did and how long it took.
    pub report: RunReport,
}

/// Simulation report for one run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunReport {
    /// Method name.
    pub method: String,
    /// Device name.
    pub device: String,
    /// Graph vertices.
    pub vertices: usize,
    /// Graph undirected edges.
    pub edges: u64,
    /// Roots actually processed.
    pub roots_processed: usize,
    /// Simulated device time for the processed roots.
    pub device_seconds: f64,
    /// Extrapolation to all `n` roots (the exact-BC runtime the
    /// paper reports; equals `device_seconds` when all roots ran).
    pub full_seconds: f64,
    /// TEPS_BC = mn / full_seconds (Eq. 4).
    pub teps: f64,
    /// Accumulated work counters.
    pub counters: KernelCounters,
    /// Simulated block-seconds per processed root.
    pub per_root_seconds: Vec<f64>,
    /// Max BFS depth per processed root.
    pub max_depths: Vec<u32>,
    /// (work-efficient, edge-parallel) iteration counts for the
    /// switching methods.
    pub strategy_iterations: Option<(u64, u64)>,
    /// (push-priced, pull-priced) kernel-launch counts when the run
    /// was direction-aware (`traversal != push`); `None` on the
    /// unchanged push-only paths.
    pub traversal_iterations: Option<(u64, u64)>,
    /// The sampling method's Algorithm 5 decision, if it ran.
    pub sampling_chose_edge_parallel: Option<bool>,
    /// Aggregated metrics when the run was metered
    /// ([`Method::run_metered`]); `None` — and zero overhead — on
    /// plain runs.
    pub metrics: Option<MetricsSummary>,
    /// The slice plan when the graph ran out-of-core
    /// ([`PartitionMode::Auto`] and the CSR did not fit); `None` on
    /// fully resident runs.
    pub partition: Option<PartitionPlan>,
    /// What the graceful-degradation ladder did to keep the run
    /// alive, if anything ([`run_or_degrade`]); `None` when the run
    /// completed exactly as requested.
    pub degradation: Option<Degradation>,
}

impl RunReport {
    /// TEPS in millions (the unit of Table III).
    pub fn mteps(&self) -> f64 {
        self.teps / 1e6
    }

    /// TEPS in billions (the unit of Table IV).
    pub fn gteps(&self) -> f64 {
        self.teps / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_graph::gen;

    fn opts_all() -> BcOptions {
        BcOptions::default()
    }

    #[test]
    fn all_methods_agree_with_brandes() {
        let g = gen::erdos_renyi(80, 240, 3);
        let expect = brandes::betweenness(&g);
        for method in Method::all() {
            let run = method.run(&g, &opts_all()).unwrap();
            for (i, (e, a)) in expect.iter().zip(&run.scores).enumerate() {
                assert!(
                    (e - a).abs() < 1e-7,
                    "{} differs at vertex {i}: {e} vs {a}",
                    method.name()
                );
            }
        }
    }

    #[test]
    fn root_selection_variants() {
        assert_eq!(RootSelection::All.resolve(4), vec![0, 1, 2, 3]);
        assert_eq!(RootSelection::FirstK(2).resolve(4), vec![0, 1]);
        assert_eq!(RootSelection::Strided(2).resolve(8), vec![0, 4]);
        assert_eq!(RootSelection::Explicit(vec![3, 1]).resolve(8), vec![3, 1]);
        // Strided never exceeds n.
        assert_eq!(RootSelection::Strided(100).resolve(3).len(), 3);
    }

    #[test]
    fn partial_roots_extrapolate() {
        let g = gen::watts_strogatz(512, 6, 0.1, 1);
        let opts = BcOptions {
            roots: RootSelection::Strided(64),
            ..Default::default()
        };
        let run = Method::WorkEfficient.run(&g, &opts).unwrap();
        assert_eq!(run.report.roots_processed, 64);
        let ratio = run.report.full_seconds / run.report.device_seconds;
        assert!((ratio - 8.0).abs() < 1e-9, "extrapolation ratio {ratio}");
        assert!(run.report.teps > 0.0);
    }

    #[test]
    fn gpu_fan_ooms_at_scale() {
        // n = 65,536 needs a 16 GiB predecessor matrix > 6 GB Titan.
        let g = gen::grid(256, 256);
        let err = Method::GpuFan
            .run(
                &g,
                &BcOptions {
                    roots: RootSelection::FirstK(1),
                    ..Default::default()
                },
            )
            .unwrap_err();
        assert!(matches!(err, SimError::OutOfMemory { .. }), "{err}");
        // The work-efficient method handles the same graph fine.
        assert!(Method::WorkEfficient
            .run(
                &g,
                &BcOptions {
                    roots: RootSelection::FirstK(1),
                    ..Default::default()
                }
            )
            .is_ok());
    }

    #[test]
    fn work_efficient_beats_edge_parallel_on_high_diameter_mesh() {
        // A long thin triangulation (diameter ≈ 1400, m ≈ 100k): the
        // paper's headline case, where the all-edges traversal
        // re-inspects the whole edge list at every one of ~1400
        // levels.
        let g = gen::triangulated_grid(24, 1400, 1);
        let opts = BcOptions {
            roots: RootSelection::Strided(8),
            ..Default::default()
        };
        let we = Method::WorkEfficient.run(&g, &opts).unwrap();
        let ep = Method::EdgeParallel.run(&g, &opts).unwrap();
        assert!(
            we.report.full_seconds * 5.0 < ep.report.full_seconds,
            "work-efficient {} should crush edge-parallel {} on a high-diameter mesh",
            we.report.full_seconds,
            ep.report.full_seconds
        );
    }

    #[test]
    fn edge_parallel_competitive_on_small_world() {
        // The paper's smallworld dataset parameters (n = 100k would
        // also work; 200k pushes the per-vertex state past L2, the
        // regime Fig. 4 measures, where EP's streaming wins back the
        // wasted-work deficit).
        let g = gen::watts_strogatz(200_000, 10, 0.1, 5);
        let opts = BcOptions {
            roots: RootSelection::Strided(12),
            ..Default::default()
        };
        let we = Method::WorkEfficient.run(&g, &opts).unwrap();
        let ep = Method::EdgeParallel.run(&g, &opts).unwrap();
        // Fig. 4: on small-world graphs pure work-efficient is
        // *slower* than (or at best comparable to) edge-parallel.
        assert!(
            ep.report.full_seconds < 1.5 * we.report.full_seconds,
            "EP {} vs WE {}",
            ep.report.full_seconds,
            we.report.full_seconds
        );
    }

    #[test]
    fn sampling_decision_matches_graph_class() {
        let sw = gen::watts_strogatz(4096, 10, 0.1, 5);
        let opts = BcOptions {
            roots: RootSelection::Strided(600),
            ..Default::default()
        };
        let run = Method::Sampling(SamplingParams::default())
            .run(&sw, &opts)
            .unwrap();
        assert_eq!(run.report.sampling_chose_edge_parallel, Some(true));

        let road = gen::road_network(4096, 2);
        let opts = BcOptions {
            roots: RootSelection::Strided(600),
            ..Default::default()
        };
        let run = Method::Sampling(SamplingParams::default())
            .run(&road, &opts)
            .unwrap();
        assert_eq!(run.report.sampling_chose_edge_parallel, Some(false));
    }

    #[test]
    fn metered_run_matches_plain_run_bitwise() {
        let g = gen::watts_strogatz(400, 6, 0.1, 2);
        let opts = BcOptions {
            roots: RootSelection::Strided(64),
            threads: 4,
            ..Default::default()
        };
        for method in [
            Method::WorkEfficient,
            Method::EdgeParallel,
            Method::Hybrid(HybridParams::default()),
            Method::Sampling(SamplingParams {
                n_samps: 16,
                ..Default::default()
            }),
        ] {
            let plain = method.run(&g, &opts).unwrap();
            let (metered, metrics) = method.run_metered(&g, &opts).unwrap();
            assert_eq!(plain.scores, metered.scores, "{}", method.name());
            assert_eq!(
                plain.report.per_root_seconds,
                metered.report.per_root_seconds
            );
            assert_eq!(plain.report.full_seconds, metered.report.full_seconds);
            assert_eq!(plain.report.counters, metered.report.counters);
            assert_eq!(plain.report.metrics, None, "plain runs carry no summary");
            let summary = metered.report.metrics.expect("metered summary");
            assert_eq!(summary, metrics.summary);
            assert_eq!(summary.roots as usize, metrics.per_root.len());
            assert_eq!(summary.roots as usize, plain.report.roots_processed);
            // The summary's hardware roll-up is the report's counters.
            assert_eq!(
                summary.hardware.kernel_launches,
                metered.report.counters.iterations
            );
            assert_eq!(summary.hardware.seconds, metered.report.counters.seconds);
            // Per-root max depths agree with the report's.
            for (m, &d) in metrics.per_root.iter().zip(&metered.report.max_depths) {
                assert_eq!(m.max_depth(), d, "{}", method.name());
            }
        }
    }

    #[test]
    fn reports_invariant_under_thread_count() {
        let g = gen::watts_strogatz(400, 6, 0.1, 2);
        for method in [
            Method::WorkEfficient,
            Method::Hybrid(HybridParams::default()),
            Method::Sampling(SamplingParams {
                n_samps: 32,
                ..Default::default()
            }),
        ] {
            let run_at = |threads: usize| {
                method
                    .run(
                        &g,
                        &BcOptions {
                            roots: RootSelection::Strided(96),
                            threads,
                            ..Default::default()
                        },
                    )
                    .unwrap()
            };
            let one = run_at(1);
            let eight = run_at(8);
            assert_eq!(one.scores, eight.scores, "{}", method.name());
            assert_eq!(one.report.per_root_seconds, eight.report.per_root_seconds);
            assert_eq!(one.report.max_depths, eight.report.max_depths);
            assert_eq!(one.report.full_seconds, eight.report.full_seconds);
            assert_eq!(one.report.teps, eight.report.teps);
            assert_eq!(
                one.report.strategy_iterations,
                eight.report.strategy_iterations
            );
            assert_eq!(
                one.report.sampling_chose_edge_parallel,
                eight.report.sampling_chose_edge_parallel
            );
        }
    }

    #[test]
    fn traversal_modes_are_bitwise_identical() {
        // The direction of the forward sweep is a pricing concern
        // only: push, pull, and auto must produce the same bits for
        // every frontier-queue method.
        let g = gen::watts_strogatz(600, 8, 0.1, 9);
        let opts_mode = |traversal| BcOptions {
            roots: RootSelection::Strided(48),
            traversal,
            ..Default::default()
        };
        for method in [
            Method::WorkEfficient,
            Method::Hybrid(HybridParams::default()),
            Method::Sampling(SamplingParams {
                n_samps: 16,
                ..Default::default()
            }),
        ] {
            let push = method.run(&g, &opts_mode(TraversalMode::Push)).unwrap();
            let pull = method.run(&g, &opts_mode(TraversalMode::Pull)).unwrap();
            let auto = method.run(&g, &opts_mode(TraversalMode::Auto)).unwrap();
            assert_eq!(push.scores, pull.scores, "{} pull", method.name());
            assert_eq!(push.scores, auto.scores, "{} auto", method.name());
            assert_eq!(
                push.report.max_depths,
                auto.report.max_depths,
                "{}",
                method.name()
            );
        }
    }

    #[test]
    fn auto_traversal_reports_pull_launches() {
        // Saturated small-world frontiers engage the bottom-up
        // kernel and the report says so; the push run stays `None`.
        let g = gen::watts_strogatz(4000, 8, 0.1, 13);
        let opts = BcOptions {
            roots: RootSelection::Strided(8),
            traversal: TraversalMode::Auto,
            ..Default::default()
        };
        let run = Method::WorkEfficient.run(&g, &opts).unwrap();
        let (push, pull) = run
            .report
            .traversal_iterations
            .expect("direction-aware run");
        assert!(pull > 0, "auto must pull on saturated levels");
        assert!(push > 0, "every root's first level pushes");
        let baseline = Method::WorkEfficient
            .run(
                &g,
                &BcOptions {
                    roots: RootSelection::Strided(8),
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(baseline.report.traversal_iterations, None);
        // (No timing claim at n = 4000 — the pull payoff needs a
        // working set that spills L2; see the 60k-vertex model test
        // and the bench trajectory for that.)
    }

    #[test]
    fn traversal_reports_invariant_under_thread_count() {
        let g = gen::watts_strogatz(400, 6, 0.1, 2);
        for mode in [TraversalMode::Pull, TraversalMode::Auto] {
            let run_at = |threads: usize| {
                Method::WorkEfficient
                    .run(
                        &g,
                        &BcOptions {
                            roots: RootSelection::Strided(96),
                            threads,
                            traversal: mode,
                            ..Default::default()
                        },
                    )
                    .unwrap()
            };
            let one = run_at(1);
            let eight = run_at(8);
            assert_eq!(one.scores, eight.scores, "{mode:?}");
            assert_eq!(one.report.per_root_seconds, eight.report.per_root_seconds);
            assert_eq!(
                one.report.traversal_iterations,
                eight.report.traversal_iterations
            );
        }
    }

    #[test]
    fn normalization_applies() {
        let g = gen::star(64);
        let opts = BcOptions {
            normalize: true,
            ..Default::default()
        };
        let run = Method::WorkEfficient.run(&g, &opts).unwrap();
        assert!(
            (run.scores[0] - 1.0).abs() < 1e-9,
            "hub normalizes to 1, got {}",
            run.scores[0]
        );
    }

    #[test]
    fn report_units() {
        let r = RunReport {
            method: "x".into(),
            device: "y".into(),
            vertices: 1,
            edges: 1,
            roots_processed: 1,
            device_seconds: 1.0,
            full_seconds: 1.0,
            teps: 2_500_000_000.0,
            counters: KernelCounters::default(),
            per_root_seconds: vec![],
            max_depths: vec![],
            strategy_iterations: None,
            traversal_iterations: None,
            sampling_chose_edge_parallel: None,
            metrics: None,
            partition: None,
            degradation: None,
        };
        assert!((r.mteps() - 2500.0).abs() < 1e-9);
        assert!((r.gteps() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn partitioned_run_matches_resident_run_bitwise() {
        // A graph that cannot fit beside the locals on a tiny device:
        // with partitioning it must still run, and the functional
        // pass is untouched, so scores are bitwise identical to a
        // fully resident run on a big device.
        let g = gen::watts_strogatz(4096, 8, 0.1, 7);
        let small = bc_gpusim::DeviceConfig {
            global_mem_bytes: footprint::graph_bytes(&g) / 2
                + Method::WorkEfficient.local_bytes(&g, &bc_gpusim::DeviceConfig::gtx_titan()),
            ..bc_gpusim::DeviceConfig::gtx_titan()
        };
        let opts_small = BcOptions {
            device: small,
            partition: PartitionMode::Auto,
            roots: RootSelection::FirstK(8),
            ..Default::default()
        };
        let opts_big = BcOptions {
            roots: RootSelection::FirstK(8),
            ..Default::default()
        };
        let part = Method::WorkEfficient.run(&g, &opts_small).unwrap();
        let full = Method::WorkEfficient.run(&g, &opts_big).unwrap();
        let plan = part.report.partition.as_ref().expect("graph was sliced");
        assert!(plan.num_slices() >= 2, "expected >= 2 slices");
        assert!(full.report.partition.is_none());
        for (a, b) in part.scores.iter().zip(&full.scores) {
            assert_eq!(a.to_bits(), b.to_bits(), "scores must be bitwise equal");
        }
        // Swapping slices over the host link is not free: every
        // partitioned root gets slower, never faster.
        for (p, f) in part
            .report
            .per_root_seconds
            .iter()
            .zip(&full.report.per_root_seconds)
        {
            assert!(p > f, "swap surcharge missing: {p} vs {f}");
        }
    }

    #[test]
    fn partition_off_still_ooms() {
        let g = gen::watts_strogatz(4096, 8, 0.1, 7);
        let small = bc_gpusim::DeviceConfig {
            global_mem_bytes: footprint::graph_bytes(&g) / 2,
            ..bc_gpusim::DeviceConfig::gtx_titan()
        };
        let opts = BcOptions {
            device: small,
            roots: RootSelection::FirstK(1),
            ..Default::default()
        };
        let err = Method::WorkEfficient.run(&g, &opts).unwrap_err();
        assert!(matches!(err, SimError::OutOfMemory { .. }), "{err}");
    }

    #[test]
    fn degradation_ladder_partitions_before_failing() {
        // Same starvation as `partition_off_still_ooms`, but through
        // the ladder: instead of erroring, the run completes
        // partitioned, records the decision, and stays bitwise
        // identical to a fully resident run.
        let g = gen::watts_strogatz(4096, 8, 0.1, 7);
        let small = bc_gpusim::DeviceConfig {
            global_mem_bytes: footprint::graph_bytes(&g) / 2
                + Method::WorkEfficient.local_bytes(&g, &bc_gpusim::DeviceConfig::gtx_titan()),
            ..bc_gpusim::DeviceConfig::gtx_titan()
        };
        let opts = BcOptions {
            device: small,
            roots: RootSelection::FirstK(8),
            ..Default::default()
        };
        assert!(Method::WorkEfficient.run(&g, &opts).is_err());
        let run = run_or_degrade(&g, &Method::WorkEfficient, &opts).expect("ladder rescues");
        match run.report.degradation {
            Some(Degradation::Partitioned { slices }) => assert!(slices >= 2),
            ref other => panic!("expected partitioned degradation, got {other:?}"),
        }
        let full = Method::WorkEfficient
            .run(
                &g,
                &BcOptions {
                    roots: RootSelection::FirstK(8),
                    ..Default::default()
                },
            )
            .unwrap();
        for (a, b) in run.scores.iter().zip(&full.scores) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn degradation_ladder_samples_when_partitioning_cannot_help() {
        // GPU-FAN's O(n²) predecessor matrix is local state, so
        // slicing the CSR gains nothing; the ladder must fall through
        // to sampled approximation on a leaner method.
        let g = gen::grid(64, 64);
        let titan = bc_gpusim::DeviceConfig::gtx_titan();
        let small = bc_gpusim::DeviceConfig {
            global_mem_bytes: footprint::graph_bytes(&g)
                + Method::WorkEfficient.local_bytes(&g, &titan)
                + (1 << 20),
            ..titan
        };
        let opts = BcOptions {
            device: small,
            ..Default::default()
        };
        assert!(Method::GpuFan.run(&g, &opts).is_err());
        let run = run_or_degrade(&g, &Method::GpuFan, &opts).expect("ladder rescues");
        match &run.report.degradation {
            Some(Degradation::Sampled {
                method,
                sources,
                error_bound,
            }) => {
                assert_eq!(method, "work-efficient");
                assert_eq!(*sources, crate::approx::DEGRADED_SAMPLE_SOURCES);
                assert!(*error_bound > 0.0 && error_bound.is_finite());
            }
            other => panic!("expected sampled degradation, got {other:?}"),
        }
        // The estimator is exact in expectation; at 512/4096 sources
        // the big scores track the exact answer.
        let exact = brandes::betweenness(&g);
        let err = crate::approx::mean_relative_error(&exact, &run.scores, 1000.0);
        assert!(err < 0.6, "sampled scores should track exact, err = {err}");
    }

    #[test]
    fn run_or_degrade_is_identity_when_nothing_degrades() {
        let g = gen::watts_strogatz(256, 6, 0.1, 3);
        let opts = BcOptions {
            roots: RootSelection::FirstK(8),
            ..Default::default()
        };
        let plain = Method::WorkEfficient.run(&g, &opts).unwrap();
        let laddered = run_or_degrade(&g, &Method::WorkEfficient, &opts).unwrap();
        assert_eq!(plain.scores, laddered.scores);
        assert_eq!(laddered.report.degradation, None);
    }

    #[test]
    fn partition_plan_slices_and_prices() {
        let g = gen::watts_strogatz(2048, 8, 0.1, 3);
        let total = g.storage_bytes();
        let plan = PartitionPlan::plan(&g, total / 3).expect("should slice");
        assert!(plan.num_slices() >= 3);
        assert!(plan.resident_bytes <= total / 3);
        assert!(plan.swap_bytes_per_level > 0);
        // A fitting budget yields no plan: partitioning is only for
        // graphs that genuinely overflow.
        assert!(PartitionPlan::plan(&g, total).is_none());
        // Deeper searches relaunch more levels and swap more.
        assert!(plan.root_swap_seconds(9) > plan.root_swap_seconds(3));
        assert!(plan.root_swap_seconds(0) > 0.0);
    }
}
