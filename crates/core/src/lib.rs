//! # bc-core — hybrid GPU betweenness centrality
//!
//! Rust reproduction of McLaughlin & Bader, *"Scalable and High
//! Performance Betweenness Centrality on the GPU"* (SC 2014): the
//! work-efficient, hybrid, and sampling BC methods, alongside the
//! prior-work vertex-parallel, edge-parallel (Jia et al.), and
//! GPU-FAN (Shi & Zhang) baselines — all executing functionally on
//! the host while a SIMT timing model ([`bc_gpusim`]) prices their
//! work the way the paper's GPUs would.
//!
//! Quick start:
//!
//! ```
//! use bc_core::{Method, BcOptions};
//! use bc_graph::gen;
//!
//! let g = gen::watts_strogatz(1000, 10, 0.1, 42);
//! let run = Method::Sampling(Default::default())
//!     .run(&g, &BcOptions::default())
//!     .expect("fits in device memory");
//! assert_eq!(run.scores.len(), 1000);
//! println!("simulated exact-BC time: {:.3}s ({:.1} MTEPS)",
//!          run.report.full_seconds, run.report.mteps());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod approx;
pub mod brandes;
pub mod checkpoint;
pub mod cpu_parallel;
pub mod engine;
pub mod frontier;
pub mod kernel_spec;
pub mod methods;
pub mod parallel;
pub mod schedule;
mod solver;
pub mod teps;
pub mod weighted;

pub use checkpoint::{graph_digest, options_fingerprint, CheckpointError, CheckpointStore};
pub use engine::Traversal;
pub use frontier::CompressedFrontier;
pub use methods::models::{
    DirectionOptimizingModel, DirectionParams, HybridParams, SamplingParams, Strategy,
    TraversalMode,
};
pub use parallel::{
    cpu_betweenness_from_roots_scheduled, effective_threads, merge_contribution_entries, run_roots,
    run_roots_contributions, run_roots_metered, run_roots_scheduled, run_roots_scheduled_metered,
    RootContribution, RootsRun, ShardableCostModel,
};
pub use schedule::{guided_chunk, lpt_order, lpt_seed, plan_assignment, Schedule};
pub use solver::{
    run_or_degrade, run_with_cost_model, BcOptions, BcRun, Degradation, Method, PartitionMode,
    PartitionPlan, RootSelection, RunReport,
};
