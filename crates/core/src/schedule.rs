//! Shard scheduling policies for the parallel multi-root runner.
//!
//! The runner in [`crate::parallel`] splits a root set into at most
//! [`crate::parallel::MAX_SHARDS`] fixed shards and merges shard
//! results in shard-index order — that partition and merge order are
//! the determinism contract and never change. What *does* change with
//! the [`Schedule`] is which worker claims which shard, and when:
//!
//! * [`Schedule::Static`] — each worker owns a contiguous block of
//!   shards, fixed up front. The classic OpenMP `schedule(static)`
//!   baseline: zero coordination, maximal skew exposure.
//! * [`Schedule::Guided`] — shards are sorted longest-first (LPT, by
//!   estimated cost) behind a shared atomic cursor; idle workers claim
//!   geometrically shrinking chunks (`remaining / (2·workers)`,
//!   minimum 1), so early claims amortize the cursor contention and
//!   late claims are fine-grained enough to even out stragglers.
//! * [`Schedule::WorkStealing`] — every worker gets a private deque
//!   seeded LPT-greedy (longest shard to the least-loaded worker);
//!   owners pop from the front, and a worker whose deque runs dry
//!   steals the *back* half of the deepest victim's deque — the
//!   cheap tail, leaving the victim its expensive head.
//!
//! Because any claim order feeds the same ordered merge, all three
//! schedules produce bitwise identical scores; they differ only in
//! wall-clock and in the [`WorkerStats`] they leave behind.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How shards (root chunks) are assigned to workers. The reduction
/// order is fixed by the merger regardless of the choice here, so the
/// schedule affects wall-clock only — never the result bits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Schedule {
    /// Contiguous pre-partitioned shard blocks per worker.
    #[default]
    Static,
    /// Shared cursor over an LPT-sorted shard list, claimed in
    /// geometrically shrinking chunks.
    Guided,
    /// Per-worker deques seeded LPT-greedy; idle workers steal the
    /// back half of the deepest deque.
    WorkStealing,
}

impl Schedule {
    /// All schedules, in CLI presentation order.
    pub const ALL: [Schedule; 3] = [Schedule::Static, Schedule::Guided, Schedule::WorkStealing];

    /// Stable kebab-case name (CLI flag value, metrics label).
    pub fn name(self) -> &'static str {
        match self {
            Schedule::Static => "static",
            Schedule::Guided => "guided",
            Schedule::WorkStealing => "work-stealing",
        }
    }

    /// Parse a CLI flag value (the kebab-case [`Schedule::name`]).
    pub fn parse(s: &str) -> Option<Schedule> {
        Schedule::ALL.into_iter().find(|m| m.name() == s)
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What one worker did during a scheduled run, in claim order.
#[derive(Clone, Debug, Default)]
pub struct WorkerStats {
    /// Shard indices this worker processed, in the order it claimed
    /// them.
    pub shards: Vec<u32>,
    /// Successful steals (batches taken from another worker's deque).
    pub steals: u64,
    /// Steal attempts that found the chosen victim already drained.
    pub failed_steal_attempts: u64,
    /// Deepest this worker ever saw its claim source (own deque,
    /// or shards left past the guided cursor) at claim time.
    pub max_queue_depth: u64,
}

/// Per-worker claiming state: the worker's identity, its locally
/// buffered chunk, and its running [`WorkerStats`].
#[derive(Debug)]
pub struct WorkerState {
    worker: usize,
    chunk: VecDeque<u32>,
    /// Counters accumulated across this worker's claims.
    pub stats: WorkerStats,
}

/// Index of the least-loaded worker (ties go to the lowest index —
/// `min_by` keeps the first minimum).
fn least_loaded(loads: &[f64]) -> usize {
    loads
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Shard indices sorted by descending estimated cost (ties ascending
/// by index — `total_cmp` plus the index tiebreak make the order a
/// pure function of the inputs), or plain index order when no costs
/// are given.
///
/// Public so the `bc-analyze` scheduler model seeds its abstract
/// queues with the *same* order the runner uses.
pub fn lpt_order(shards: usize, costs: Option<&[f64]>) -> Vec<u32> {
    let mut order: Vec<u32> = (0..shards as u32).collect();
    if let Some(c) = costs {
        debug_assert_eq!(c.len(), shards);
        order.sort_by(|&a, &b| c[b as usize].total_cmp(&c[a as usize]).then(a.cmp(&b)));
    }
    order
}

/// The guided schedule's chunk size: claim `remaining / (2·workers)`
/// shards, minimum 1, from the shared cursor. Factored out so the
/// runner (`ShardQueue::claim`), the cluster planner
/// ([`plan_assignment`]), and the `bc-analyze` interleaving model all
/// compute the identical geometric shrink.
pub fn guided_chunk(remaining: usize, workers: usize) -> usize {
    (remaining / (2 * workers.max(1))).max(1)
}

/// LPT-greedy seeding: deal shards in [`lpt_order`] to the currently
/// least-loaded worker (ties to the lowest index). This is both the
/// work-stealing runner's initial deque fill and the fixed point its
/// steal-based balancing converges to, which is why the cluster
/// planner reuses it verbatim.
pub fn lpt_seed(shards: usize, workers: usize, costs: Option<&[f64]>) -> Vec<Vec<u32>> {
    let workers = workers.max(1);
    let mut queues: Vec<Vec<u32>> = (0..workers).map(|_| Vec::new()).collect();
    let mut loads = vec![0.0f64; workers];
    for &s in &lpt_order(shards, costs) {
        let w = least_loaded(&loads);
        queues[w].push(s);
        loads[w] += costs.map_or(1.0, |c| c[s as usize]);
    }
    queues
}

/// The shared claim source the workers of one run draw shards from.
/// Construction is deterministic; claiming is dynamic (except under
/// [`Schedule::Static`]) but feeds a merge whose order is fixed.
pub(crate) enum ShardQueue {
    Static {
        /// `blocks[w] = (lo, hi)` — worker `w` owns shards `lo..hi`.
        blocks: Vec<(u32, u32)>,
    },
    Guided {
        /// Shards in LPT order.
        order: Vec<u32>,
        /// Next unclaimed position in `order`.
        next: AtomicUsize,
        workers: usize,
    },
    Stealing {
        /// One deque per worker, LPT-greedy seeded (each therefore
        /// descending in estimated cost front to back).
        queues: Vec<Mutex<VecDeque<u32>>>,
    },
}

impl ShardQueue {
    /// Build the claim source for `shards` shards across `workers`
    /// workers. `costs` (one estimate per shard) seeds the LPT order
    /// for the dynamic schedules; [`Schedule::Static`] ignores it.
    pub(crate) fn new(
        schedule: Schedule,
        shards: usize,
        workers: usize,
        costs: Option<&[f64]>,
    ) -> ShardQueue {
        let workers = workers.max(1);
        match schedule {
            Schedule::Static => {
                let per = shards.div_ceil(workers).max(1);
                let blocks = (0..workers)
                    .map(|w| {
                        let lo = (w * per).min(shards) as u32;
                        let hi = ((w + 1) * per).min(shards) as u32;
                        (lo, hi)
                    })
                    .collect();
                ShardQueue::Static { blocks }
            }
            Schedule::Guided => ShardQueue::Guided {
                order: lpt_order(shards, costs),
                next: AtomicUsize::new(0),
                workers,
            },
            Schedule::WorkStealing => ShardQueue::Stealing {
                queues: lpt_seed(shards, workers, costs)
                    .into_iter()
                    .map(|q| Mutex::new(q.into_iter().collect()))
                    .collect(),
            },
        }
    }

    /// Initial claiming state for worker `worker`.
    pub(crate) fn worker_state(&self, worker: usize) -> WorkerState {
        let mut chunk = VecDeque::new();
        if let ShardQueue::Static { blocks } = self {
            let (lo, hi) = blocks[worker];
            chunk.extend(lo..hi);
        }
        WorkerState {
            worker,
            chunk,
            stats: WorkerStats::default(),
        }
    }

    /// Claim the next shard for `st`'s worker, or `None` when no
    /// claimable work remains anywhere this worker may draw from.
    pub(crate) fn claim(&self, st: &mut WorkerState) -> Option<u32> {
        match self {
            ShardQueue::Static { .. } => {
                let depth = st.chunk.len() as u64;
                let shard = st.chunk.pop_front()?;
                st.stats.max_queue_depth = st.stats.max_queue_depth.max(depth);
                st.stats.shards.push(shard);
                Some(shard)
            }
            ShardQueue::Guided {
                order,
                next,
                workers,
            } => {
                if st.chunk.is_empty() {
                    let len = order.len();
                    // The remaining count may be stale by the time the
                    // cursor moves — that only perturbs the chunk size,
                    // never which shards exist or how they merge.
                    let remaining = len.saturating_sub(next.load(Ordering::Relaxed));
                    let take = guided_chunk(remaining, *workers);
                    let lo = next.fetch_add(take, Ordering::Relaxed);
                    if lo >= len {
                        return None;
                    }
                    let hi = (lo + take).min(len);
                    st.stats.max_queue_depth = st.stats.max_queue_depth.max((len - lo) as u64);
                    st.chunk.extend(order[lo..hi].iter().copied());
                }
                let shard = st.chunk.pop_front()?;
                st.stats.shards.push(shard);
                Some(shard)
            }
            ShardQueue::Stealing { queues } => loop {
                {
                    let mut own = queues[st.worker].lock().expect("shard queue poisoned");
                    let depth = own.len() as u64;
                    if let Some(shard) = own.pop_front() {
                        drop(own);
                        st.stats.max_queue_depth = st.stats.max_queue_depth.max(depth);
                        st.stats.shards.push(shard);
                        return Some(shard);
                    }
                }
                // Own deque dry: pick the deepest victim and steal the
                // back half of its deque (its cheapest shards under
                // LPT seeding). The stolen batch lands in *our* shared
                // deque, so it remains stealable in turn.
                let mut victim: Option<(usize, usize)> = None; // (depth, index)
                for (i, q) in queues.iter().enumerate() {
                    if i == st.worker {
                        continue;
                    }
                    let depth = q.lock().expect("shard queue poisoned").len();
                    if depth > 0 && victim.is_none_or(|(d, _)| depth > d) {
                        victim = Some((depth, i));
                    }
                }
                let Some((_, v)) = victim else {
                    // Nothing claimable anywhere. (A batch still in a
                    // thief's hands will be finished by that thief.)
                    return None;
                };
                let stolen: VecDeque<u32> = {
                    let mut vq = queues[v].lock().expect("shard queue poisoned");
                    let keep = vq.len() / 2;
                    vq.split_off(keep)
                };
                if stolen.is_empty() {
                    // The victim drained between the scan and the lock.
                    st.stats.failed_steal_attempts += 1;
                    continue;
                }
                st.stats.steals += 1;
                queues[st.worker]
                    .lock()
                    .expect("shard queue poisoned")
                    .extend(stolen);
            },
        }
    }
}

/// Deterministically pre-plan the assignment of `costs.len()` items
/// across `workers` workers under `schedule`, returning the item
/// indices each worker executes in order.
///
/// This is the schedule the *cluster* runner uses: its fault-injection
/// replay contract requires the whole execution to be a pure function
/// of (plan, graph, config), so per-GPU assignment cannot react to
/// wall-clock. Instead the dynamic schedules are planned from the cost
/// estimates — [`Schedule::WorkStealing`] as LPT-greedy (the
/// fixed point steal-based balancing converges to), [`Schedule::Guided`]
/// as shrinking LPT chunks — while [`Schedule::Static`] reproduces the
/// historical round-robin deal exactly.
pub fn plan_assignment(costs: &[f64], workers: usize, schedule: Schedule) -> Vec<Vec<usize>> {
    let workers = workers.max(1);
    let mut out: Vec<Vec<usize>> = (0..workers).map(|_| Vec::new()).collect();
    match schedule {
        Schedule::Static => {
            for i in 0..costs.len() {
                out[i % workers].push(i);
            }
        }
        Schedule::WorkStealing => {
            for (w, q) in lpt_seed(costs.len(), workers, Some(costs))
                .into_iter()
                .enumerate()
            {
                out[w] = q.into_iter().map(|s| s as usize).collect();
            }
        }
        Schedule::Guided => {
            let order = lpt_order(costs.len(), Some(costs));
            let mut loads = vec![0.0f64; workers];
            let mut pos = 0;
            while pos < order.len() {
                let remaining = order.len() - pos;
                let take = guided_chunk(remaining, workers).min(remaining);
                let w = least_loaded(&loads);
                for &s in &order[pos..pos + take] {
                    out[w].push(s as usize);
                    loads[w] += costs[s as usize];
                }
                pos += take;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn drain_all(q: &ShardQueue, workers: usize) -> Vec<Vec<u32>> {
        (0..workers)
            .map(|w| {
                let mut st = q.worker_state(w);
                let mut got = Vec::new();
                while let Some(s) = q.claim(&mut st) {
                    got.push(s);
                }
                assert_eq!(st.stats.shards, got);
                got
            })
            .collect()
    }

    #[test]
    fn schedule_names_round_trip() {
        for s in Schedule::ALL {
            assert_eq!(Schedule::parse(s.name()), Some(s));
            assert_eq!(format!("{s}"), s.name());
        }
        assert_eq!(Schedule::parse("bogus"), None);
        assert_eq!(Schedule::default(), Schedule::Static);
    }

    #[test]
    fn static_blocks_cover_exactly_once() {
        for (shards, workers) in [(64usize, 4usize), (63, 8), (5, 8), (1, 3), (7, 7)] {
            let q = ShardQueue::new(Schedule::Static, shards, workers, None);
            let per_worker = drain_all(&q, workers);
            let all: Vec<u32> = per_worker.concat();
            let set: BTreeSet<u32> = all.iter().copied().collect();
            assert_eq!(set.len(), shards, "{shards} shards / {workers} workers");
            assert_eq!(all.len(), shards, "no shard claimed twice");
            // Blocks are contiguous and ordered by worker index.
            let mut sorted = all.clone();
            sorted.sort_unstable();
            assert_eq!(all, sorted, "static blocks are contiguous in worker order");
        }
    }

    #[test]
    fn guided_single_worker_claims_lpt_order() {
        let costs = [1.0, 9.0, 3.0, 9.0, 2.0];
        let q = ShardQueue::new(Schedule::Guided, 5, 1, Some(&costs));
        let got = drain_all(&q, 1);
        // Descending cost, ties by ascending index.
        assert_eq!(got[0], vec![1, 3, 2, 4, 0]);
    }

    #[test]
    fn stealing_seed_balances_lpt_greedy() {
        let costs = [8.0, 1.0, 7.0, 2.0];
        let q = ShardQueue::new(Schedule::WorkStealing, 4, 2, Some(&costs));
        // LPT order 0(8), 2(7), 3(2), 1(1): worker0 <- 0 (load 8),
        // worker1 <- 2 (load 7), worker1 <- 3 (load 9), worker0 <- 1.
        // Claim in lockstep so neither worker runs dry and steals.
        let mut w0 = q.worker_state(0);
        let mut w1 = q.worker_state(1);
        assert_eq!(q.claim(&mut w0), Some(0));
        assert_eq!(q.claim(&mut w1), Some(2));
        assert_eq!(q.claim(&mut w0), Some(1));
        assert_eq!(q.claim(&mut w1), Some(3));
        assert_eq!(w0.stats.steals + w1.stats.steals, 0, "seed needs no steals");
    }

    #[test]
    fn stealing_thief_takes_back_half() {
        let q = ShardQueue::new(Schedule::WorkStealing, 6, 2, None);
        // Without costs the seed deals round-robin by unit load:
        // worker0 = [0, 2, 4], worker1 = [1, 3, 5].
        let mut thief = q.worker_state(0);
        // Drain worker0's own deque first.
        for _ in 0..3 {
            assert!(q.claim(&mut thief).is_some());
        }
        // Next claim must steal from worker1's deque (back half).
        let stolen = q.claim(&mut thief).expect("steal succeeds");
        assert_eq!(stolen, 3, "steals the back half [3, 5], pops 3");
        assert_eq!(thief.stats.steals, 1);
        let mut owner = q.worker_state(1);
        assert_eq!(q.claim(&mut owner), Some(1), "victim keeps its head");
    }

    #[test]
    fn every_schedule_claims_each_shard_exactly_once() {
        let costs: Vec<f64> = (0..23).map(|i| ((i * 7) % 11) as f64 + 1.0).collect();
        for schedule in Schedule::ALL {
            for workers in [1usize, 3, 8] {
                let q = ShardQueue::new(schedule, 23, workers, Some(&costs));
                let all: Vec<u32> = drain_all(&q, workers).concat();
                let mut sorted = all.clone();
                sorted.sort_unstable();
                assert_eq!(
                    sorted,
                    (0..23u32).collect::<Vec<_>>(),
                    "{schedule} x {workers} workers"
                );
            }
        }
    }

    #[test]
    fn plan_assignment_static_is_round_robin() {
        let costs = vec![1.0; 7];
        let plan = plan_assignment(&costs, 3, Schedule::Static);
        assert_eq!(plan, vec![vec![0, 3, 6], vec![1, 4], vec![2, 5]]);
    }

    #[test]
    fn plan_assignment_lpt_balances_skew() {
        // One huge item plus six small ones: round-robin puts the big
        // item and two small ones on worker 0; LPT isolates it.
        let costs = [10.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let lpt = plan_assignment(&costs, 3, Schedule::WorkStealing);
        let load = |plan: &[Vec<usize>]| -> f64 {
            plan.iter()
                .map(|w| w.iter().map(|&i| costs[i]).sum::<f64>())
                .fold(0.0, f64::max)
        };
        let rr = plan_assignment(&costs, 3, Schedule::Static);
        assert!(load(&lpt) < load(&rr), "LPT makespan beats round-robin");
        assert_eq!(lpt[0], vec![0], "the huge item runs alone");
        // Every item appears exactly once in every schedule's plan.
        for schedule in Schedule::ALL {
            let plan = plan_assignment(&costs, 3, schedule);
            let mut items: Vec<usize> = plan.concat();
            items.sort_unstable();
            assert_eq!(items, (0..7).collect::<Vec<_>>(), "{schedule}");
        }
    }

    #[test]
    fn zero_shards_yield_no_claims_anywhere() {
        for schedule in Schedule::ALL {
            let q = ShardQueue::new(schedule, 0, 4, None);
            for w in 0..4 {
                let mut st = q.worker_state(w);
                assert_eq!(q.claim(&mut st), None, "{schedule} worker {w}");
                assert!(st.stats.shards.is_empty());
            }
        }
        assert!(lpt_order(0, None).is_empty());
        assert_eq!(lpt_seed(0, 3, None), vec![Vec::new(); 3]);
    }

    #[test]
    fn more_workers_than_shards_leaves_late_workers_empty_handed() {
        let costs = [4.0, 2.0];
        for schedule in Schedule::ALL {
            let q = ShardQueue::new(schedule, 2, 8, Some(&costs));
            let per_worker = drain_all(&q, 8);
            let all: Vec<u32> = per_worker.concat();
            let mut sorted = all.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1], "{schedule}: both shards, exactly once");
            let nonempty = per_worker.iter().filter(|w| !w.is_empty()).count();
            assert!(nonempty <= 2, "{schedule}: at most one worker per shard");
        }
    }

    #[test]
    fn single_shard_goes_to_exactly_one_worker() {
        for schedule in Schedule::ALL {
            let q = ShardQueue::new(schedule, 1, 4, Some(&[3.0]));
            let all: Vec<u32> = drain_all(&q, 4).concat();
            assert_eq!(all, vec![0], "{schedule}");
        }
    }

    #[test]
    fn all_equal_costs_keep_lpt_deterministic() {
        // With every estimate tied, the index tiebreak must make LPT
        // the identity order — and therefore a pure function of the
        // shard count, not of sort internals.
        let costs = vec![7.5f64; 9];
        assert_eq!(lpt_order(9, Some(&costs)), (0..9u32).collect::<Vec<_>>());
        // Seeding then deals round-robin (least-loaded tie goes to the
        // lowest worker index every round).
        let seed = lpt_seed(9, 3, Some(&costs));
        assert_eq!(seed, vec![vec![0, 3, 6], vec![1, 4, 7], vec![2, 5, 8]]);
        // And the planned assignments are reproducible run to run.
        for schedule in Schedule::ALL {
            let a = plan_assignment(&costs, 3, schedule);
            let b = plan_assignment(&costs, 3, schedule);
            assert_eq!(a, b, "{schedule}");
        }
    }

    #[test]
    fn guided_chunk_shrinks_geometrically_to_one() {
        assert_eq!(guided_chunk(24, 3), 4);
        assert_eq!(guided_chunk(6, 3), 1);
        assert_eq!(guided_chunk(1, 3), 1);
        assert_eq!(guided_chunk(0, 3), 1, "floor is 1 even when drained");
        assert_eq!(guided_chunk(10, 0), 5, "zero workers clamps to one");
    }

    #[test]
    fn plan_assignment_empty_and_degenerate() {
        assert_eq!(
            plan_assignment(&[], 4, Schedule::Guided),
            vec![Vec::new(); 4]
        );
        let one = plan_assignment(&[5.0], 0, Schedule::WorkStealing);
        assert_eq!(one, vec![vec![0]], "zero workers clamps to one");
    }
}
