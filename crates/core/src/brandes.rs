//! Sequential Brandes' algorithm — the exact reference every GPU
//! method is validated against.
//!
//! Brandes (2001) computes betweenness centrality in O(mn) for
//! unweighted graphs by splitting the computation per source vertex
//! into (1) a BFS that counts shortest paths `σ` and (2) a reverse
//! sweep accumulating dependencies `δ` (Eq. 2 of the paper).

use bc_graph::{Csr, VertexId};

/// Result of a single-source shortest-path phase.
#[derive(Clone, Debug)]
pub struct SingleSource {
    /// BFS distance from the source (`u32::MAX` if unreachable).
    pub dist: Vec<u32>,
    /// Number of shortest paths from the source to each vertex.
    pub sigma: Vec<f64>,
    /// Vertices in non-decreasing distance order (the stack `S`).
    pub order: Vec<VertexId>,
}

/// Reusable buffers for a multi-root sequence of Brandes searches:
/// the single-source state plus the δ scratch of the accumulation
/// phase. Resets cost O(reached), not O(n), so a root touching a
/// small component pays only for that component.
pub struct BrandesWorkspace {
    ss: SingleSource,
    delta: Vec<f64>,
}

impl BrandesWorkspace {
    /// Allocate buffers for an `n`-vertex graph.
    pub fn new(n: usize) -> Self {
        BrandesWorkspace {
            ss: SingleSource {
                dist: vec![u32::MAX; n],
                sigma: vec![0.0f64; n],
                order: Vec::with_capacity(n),
            },
            delta: vec![0.0f64; n],
        }
    }

    /// The most recent search's state (valid after
    /// [`single_source_into`]).
    pub fn search(&self) -> &SingleSource {
        &self.ss
    }

    /// Consume the workspace, keeping the search state.
    pub fn into_search(self) -> SingleSource {
        self.ss
    }
}

/// Run the shortest-path counting phase from `source`.
pub fn single_source(g: &Csr, source: VertexId) -> SingleSource {
    let mut ws = BrandesWorkspace::new(g.num_vertices());
    single_source_into(g, source, &mut ws);
    ws.into_search()
}

/// [`single_source`] into a reused workspace: only the vertices the
/// *previous* search reached are reset (they are exactly the dirty
/// entries — dist/sigma are written only on discovery), and the
/// `order` vector doubles as the BFS queue via a head cursor, so the
/// whole phase allocates nothing in steady state.
pub fn single_source_into(g: &Csr, source: VertexId, ws: &mut BrandesWorkspace) {
    let ss = &mut ws.ss;
    for &v in &ss.order {
        ss.dist[v as usize] = u32::MAX;
        ss.sigma[v as usize] = 0.0;
    }
    ss.order.clear();
    ss.dist[source as usize] = 0;
    ss.sigma[source as usize] = 1.0;
    ss.order.push(source);
    let mut head = 0;
    while head < ss.order.len() {
        let v = ss.order[head];
        head += 1;
        let dv = ss.dist[v as usize];
        for &w in g.neighbors(v) {
            if ss.dist[w as usize] == u32::MAX {
                ss.dist[w as usize] = dv + 1;
                ss.order.push(w);
            }
            if ss.dist[w as usize] == dv + 1 {
                ss.sigma[w as usize] += ss.sigma[v as usize];
            }
        }
    }
}

/// Accumulate the dependencies of `source` into `bc`
/// (`bc[v] += δ_s(v)` for all `v ≠ s`).
pub fn accumulate(g: &Csr, source: VertexId, ss: &SingleSource, bc: &mut [f64]) {
    let mut scratch = Vec::new();
    accumulate_into(&mut scratch, g, source, ss, bc);
}

/// [`accumulate`] with a caller-owned δ scratch vector, avoiding the
/// per-root `vec![0.0; n]`. `scratch` is grown to `n` as needed; its
/// entries must be zero on entry (an empty or freshly returned vector
/// qualifies), and the function restores them to zero before
/// returning by sweeping the search order.
pub fn accumulate_into(
    scratch: &mut Vec<f64>,
    g: &Csr,
    source: VertexId,
    ss: &SingleSource,
    bc: &mut [f64],
) {
    scratch.resize(g.num_vertices(), 0.0);
    accumulate_core(g, source, ss, scratch, bc);
}

/// [`accumulate`] reading the search state out of a reused
/// [`BrandesWorkspace`] and using its δ scratch.
pub fn accumulate_from_workspace(
    g: &Csr,
    source: VertexId,
    ws: &mut BrandesWorkspace,
    bc: &mut [f64],
) {
    let BrandesWorkspace { ss, delta } = ws;
    accumulate_core(g, source, ss, delta, bc);
}

/// Shared accumulation kernel. `delta` must be zero at every index on
/// entry; it is re-zeroed (O(reached) sweep of `ss.order`) on exit —
/// every read and write lands on a reached vertex, so the sweep
/// restores the invariant exactly.
fn accumulate_core(
    g: &Csr,
    source: VertexId,
    ss: &SingleSource,
    delta: &mut [f64],
    bc: &mut [f64],
) {
    for &w in ss.order.iter().rev() {
        for &v in g.neighbors(w) {
            // v is a successor of w iff dist[v] == dist[w] + 1; the
            // successor formulation (Madduri et al.) needs no
            // predecessor storage and no atomics.
            if ss.dist[w as usize] != u32::MAX && ss.dist[v as usize] == ss.dist[w as usize] + 1 {
                delta[w as usize] +=
                    ss.sigma[w as usize] / ss.sigma[v as usize] * (1.0 + delta[v as usize]);
            }
        }
        if w != source {
            bc[w as usize] += delta[w as usize];
        }
    }
    for &w in &ss.order {
        delta[w as usize] = 0.0;
    }
}

/// Halve `scores` when `g` is symmetric — undirected runs count each
/// path from both endpoints. The single shared epilogue used by every
/// driver (sequential, CPU-parallel, simulated GPU, cluster).
pub fn halve_if_symmetric(g: &Csr, scores: &mut [f64]) {
    if g.is_symmetric() {
        for s in scores.iter_mut() {
            *s *= 0.5;
        }
    }
}

/// Exact betweenness centrality of every vertex, from all sources.
///
/// For symmetric (undirected) graphs each undirected path is counted
/// once from each endpoint, so scores are halved — matching the
/// convention of the paper's Figure 1.
pub fn betweenness(g: &Csr) -> Vec<f64> {
    betweenness_from_roots(g, g.vertices())
}

/// Betweenness contributions of a subset of source vertices (exact
/// when `roots` covers all vertices; the building block for the
/// approximation and distributed drivers).
pub fn betweenness_from_roots(g: &Csr, roots: impl IntoIterator<Item = VertexId>) -> Vec<f64> {
    let mut bc = vec![0.0f64; g.num_vertices()];
    let mut ws = BrandesWorkspace::new(g.num_vertices());
    for s in roots {
        single_source_into(g, s, &mut ws);
        accumulate_from_workspace(g, s, &mut ws, &mut bc);
    }
    halve_if_symmetric(g, &mut bc);
    bc
}

/// Edge betweenness centrality: for every directed arc (indexed as
/// in [`Csr::adj_array`]), the number of shortest paths using it.
///
/// For symmetric graphs the two arcs of an undirected edge carry
/// equal scores after halving, and the undirected edge score is
/// their **sum** (equivalently, twice either arc) — this is the
/// quantity Girvan–Newman community detection removes edges by, one
/// of the paper's §I motivating applications.
pub fn edge_betweenness(g: &Csr) -> Vec<f64> {
    let n = g.num_vertices();
    let mut ebc = vec![0.0f64; g.num_directed_edges()];
    let mut delta = vec![0.0f64; n];
    let mut ws = BrandesWorkspace::new(n);
    for s in g.vertices() {
        single_source_into(g, s, &mut ws);
        let ss = ws.search();
        delta.fill(0.0);
        for &w in ss.order.iter().rev() {
            for (e, &v) in g.edge_range(w).zip(g.neighbors(w)) {
                if ss.dist[v as usize] == ss.dist[w as usize].wrapping_add(1) {
                    let flow =
                        ss.sigma[w as usize] / ss.sigma[v as usize] * (1.0 + delta[v as usize]);
                    // Arc w -> v carries `flow` paths from source s.
                    ebc[e] += flow;
                    delta[w as usize] += flow;
                }
            }
        }
    }
    halve_if_symmetric(g, &mut ebc);
    ebc
}

/// Normalize BC scores by the maximum possible value `(n-1)(n-2)`
/// (undirected scores were already halved, so the undirected
/// normalizer is `(n-1)(n-2)/2`).
pub fn normalize(scores: &mut [f64], symmetric: bool) {
    let n = scores.len() as f64;
    if n < 3.0 {
        for s in scores.iter_mut() {
            *s = 0.0;
        }
        return;
    }
    let denom = if symmetric {
        (n - 1.0) * (n - 2.0) / 2.0
    } else {
        (n - 1.0) * (n - 2.0)
    };
    for s in scores.iter_mut() {
        *s /= denom;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_graph::gen;

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-9, "vertex {i}: {x} vs {y}");
        }
    }

    /// The paper's Figure 1 example graph, reconstructed from the
    /// prose (1-indexed vertices 1..=9, stored 0-indexed):
    /// * vertex 4 is the sole bridge between {1,2,3} and {5..9};
    /// * vertex 9 hangs off vertex 7 only;
    /// * vertex 8 connects 5 and 7, so 5→9 has a longer route via 8
    ///   but its *shortest* path goes through 7 — giving 8 a BC of 0.
    fn figure1_graph() -> Csr {
        let edges_1idx = [
            (1u32, 2u32),
            (1, 3),
            (2, 3),
            (2, 4),
            (3, 4),
            (4, 5),
            (4, 6),
            (5, 6),
            (5, 7),
            (6, 7),
            (5, 8),
            (7, 8),
            (7, 9),
        ];
        Csr::from_undirected_edges(9, edges_1idx.iter().map(|&(a, b)| (a - 1, b - 1)))
    }

    #[test]
    fn figure1_scores() {
        // E-fig1: the qualitative claims the paper makes about its
        // example.
        let g = figure1_graph();
        let bc = betweenness(&g);
        assert!(
            (bc[8 - 1] - 0.0).abs() < 1e-9,
            "vertex 8 has BC 0, got {}",
            bc[7]
        );
        assert!(
            (bc[9 - 1] - 0.0).abs() < 1e-9,
            "vertex 9 has BC 0, got {}",
            bc[8]
        );
        let max = bc.iter().cloned().fold(0.0, f64::max);
        assert!(
            (bc[4 - 1] - max).abs() < 1e-9,
            "vertex 4 must dominate: {bc:?}"
        );
        // Vertex 4 bridges the 3 right vertices to the 5 left ones
        // plus its share of intra-side traffic; at minimum 15 pairs.
        assert!(
            bc[4 - 1] >= 15.0,
            "vertex 4 carries all cross traffic: {bc:?}"
        );
    }

    #[test]
    fn figure1_matches_brute_force() {
        let g = figure1_graph();
        assert_close(&betweenness(&g), &brute_force_bc(&g));
    }

    /// Independent O(n^3)-ish cross-check: count shortest paths by
    /// BFS from every source and tally pair-by-pair (Eq. 1 applied
    /// literally), with no shared code with Brandes' accumulation.
    fn brute_force_bc(g: &Csr) -> Vec<f64> {
        let n = g.num_vertices();
        let mut bc = vec![0.0f64; n];
        // For each ordered source s: dist + sigma forward; then for
        // each target t and each vertex v, sigma_st(v) =
        // sigma_sv * sigma_vt if d(s,v) + d(v,t) = d(s,t). We get
        // sigma_vt from a BFS rooted at every vertex.
        let all: Vec<SingleSource> = (0..n as u32).map(|s| single_source(g, s)).collect();
        for s in 0..n {
            for t in 0..n {
                if s == t || all[s].dist[t] == u32::MAX {
                    continue;
                }
                let dst = all[s].dist[t];
                let sigma_st = all[s].sigma[t];
                for v in 0..n {
                    if v == s || v == t {
                        continue;
                    }
                    let dsv = all[s].dist[v];
                    let dvt = all[v].dist[t];
                    if dsv != u32::MAX && dvt != u32::MAX && dsv + dvt == dst {
                        bc[v] += all[s].sigma[v] * all[v].sigma[t] / sigma_st;
                    }
                }
            }
        }
        // Ordered pairs double-count undirected paths.
        if g.is_symmetric() {
            for b in bc.iter_mut() {
                *b *= 0.5;
            }
        }
        bc
    }

    #[test]
    fn brute_force_agrees_on_random_graphs() {
        for seed in 0..4 {
            let g = gen::erdos_renyi(24, 40, seed);
            assert_close(&betweenness(&g), &brute_force_bc(&g));
        }
    }

    #[test]
    fn path_graph_closed_form() {
        // On a path 0-1-2-3-4, interior vertex i lies on all pairs
        // (a < i < b): BC(i) = i * (n-1-i).
        let g = gen::path(5);
        let bc = betweenness(&g);
        assert_close(&bc, &[0.0, 3.0, 4.0, 3.0, 0.0]);
    }

    #[test]
    fn star_graph_closed_form() {
        // Hub of an n-star lies on all (n-1 choose 2) leaf pairs.
        let g = gen::star(6);
        let bc = betweenness(&g);
        assert_close(&bc, &[10.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn cycle_graph_symmetry() {
        let g = gen::cycle(8);
        let bc = betweenness(&g);
        for w in &bc {
            assert!((w - bc[0]).abs() < 1e-9, "cycle BC must be uniform: {bc:?}");
        }
        // Even cycle n=8, by hand: 3 unique-shortest pairs cross a
        // given vertex plus 3 antipodal pairs at weight 1/2 = 4.5.
        assert!((bc[0] - 4.5).abs() < 1e-9, "got {}", bc[0]);
    }

    #[test]
    fn complete_graph_zero() {
        let g = gen::complete(7);
        let bc = betweenness(&g);
        for w in &bc {
            assert!(w.abs() < 1e-12, "no intermediaries in a clique: {bc:?}");
        }
    }

    #[test]
    fn disconnected_components_independent() {
        // Two paths of 3: middle vertices get BC 1 each.
        let g = Csr::from_undirected_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)]);
        let bc = betweenness(&g);
        assert_close(&bc, &[0.0, 1.0, 0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn directed_path_counts_each_direction() {
        // Directed path 0 -> 1 -> 2: vertex 1 lies on one ordered pair.
        let g = Csr::from_directed_edges(3, [(0, 1), (1, 2)]);
        let bc = betweenness(&g);
        assert_close(&bc, &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn partial_roots_sum_to_full() {
        let g = gen::grid(4, 4);
        let full = betweenness(&g);
        let mut partial = vec![0.0; 16];
        for chunk in [(0u32..8), (8u32..16)] {
            let part = betweenness_from_roots(&g, chunk);
            for (p, q) in partial.iter_mut().zip(&part) {
                *p += q;
            }
        }
        assert_close(&full, &partial);
    }

    #[test]
    fn normalization() {
        let g = gen::star(5); // hub BC = C(4,2) = 6 = max possible for n=5 undirected
        let mut bc = betweenness(&g);
        normalize(&mut bc, true);
        assert!(
            (bc[0] - 1.0).abs() < 1e-9,
            "normalized hub must be 1.0, got {}",
            bc[0]
        );
    }

    #[test]
    fn normalize_tiny_graphs() {
        let mut s = vec![0.5, 0.5];
        normalize(&mut s, true);
        assert_eq!(s, vec![0.0, 0.0]);
    }

    #[test]
    fn edge_betweenness_on_path() {
        // Edge (i, i+1) of a path carries all (i+1)(n-1-i) crossing
        // pairs.
        let g = gen::path(4);
        let ebc = edge_betweenness(&g);
        // Arc 0->1 is edge id 0 (vertex 0 has one neighbor).
        let arc = |u: u32, v: u32| {
            g.edge_range(u)
                .zip(g.neighbors(u))
                .find(|&(_, &w)| w == v)
                .map(|(e, _)| e)
                .unwrap()
        };
        // Each arc carries half the undirected edge's score.
        assert!((ebc[arc(0, 1)] - 1.5).abs() < 1e-9);
        assert!((ebc[arc(1, 2)] - 2.0).abs() < 1e-9);
        assert!((ebc[arc(2, 3)] - 1.5).abs() < 1e-9);
        // Symmetric arcs carry equal flow.
        assert!((ebc[arc(1, 0)] - ebc[arc(0, 1)]).abs() < 1e-9);
    }

    #[test]
    fn edge_betweenness_sums_to_pairwise_distances() {
        // Σ_arcs eBC (halved per symmetric convention) equals the sum
        // of d(s, t) over unordered reachable pairs.
        let g = gen::erdos_renyi(30, 60, 5);
        let ebc = edge_betweenness(&g);
        let total: f64 = ebc.iter().sum();
        let mut dist_sum = 0u64;
        for s in g.vertices() {
            let ss = single_source(&g, s);
            for t in 0..g.num_vertices() {
                if (t as u32) > s && ss.dist[t] != u32::MAX {
                    dist_sum += ss.dist[t] as u64;
                }
            }
        }
        assert!(
            (total - dist_sum as f64).abs() < 1e-6,
            "edge BC total {total} vs pair distance sum {dist_sum}"
        );
    }

    #[test]
    fn workspace_reuse_matches_fresh_searches() {
        // Disconnected components stress the O(reached) reset: state
        // left by a big-component search must not leak into a search
        // rooted in the small one.
        let g = Csr::from_undirected_edges(7, [(0, 1), (1, 2), (2, 3), (4, 5), (5, 6)]);
        let mut ws = BrandesWorkspace::new(7);
        for s in [0u32, 4, 3, 6, 0] {
            single_source_into(&g, s, &mut ws);
            let fresh = single_source(&g, s);
            assert_eq!(ws.search().dist, fresh.dist, "root {s}");
            assert_eq!(ws.search().sigma, fresh.sigma, "root {s}");
            assert_eq!(ws.search().order, fresh.order, "root {s}");
        }
    }

    #[test]
    fn accumulate_into_reuses_scratch() {
        let g = gen::grid(3, 4);
        let mut scratch = Vec::new();
        let mut bc_scratch = vec![0.0; 12];
        let mut bc_plain = vec![0.0; 12];
        for s in g.vertices() {
            let ss = single_source(&g, s);
            accumulate_into(&mut scratch, &g, s, &ss, &mut bc_scratch);
            accumulate(&g, s, &ss, &mut bc_plain);
        }
        assert_eq!(bc_scratch, bc_plain);
        assert!(
            scratch.iter().all(|&d| d == 0.0),
            "scratch must leave zeroed"
        );
    }

    #[test]
    fn sigma_counts_paths() {
        // Diamond: 0-1, 0-2, 1-3, 2-3 — two shortest paths 0 to 3.
        let g = Csr::from_undirected_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]);
        let ss = single_source(&g, 0);
        assert_eq!(ss.dist, vec![0, 1, 1, 2]);
        assert_eq!(ss.sigma[3], 2.0);
        // And BC: vertices 1 and 2 each carry half the 0-3 traffic.
        let bc = betweenness(&g);
        assert!((bc[1] - 0.5).abs() < 1e-9);
        assert!((bc[2] - 0.5).abs() < 1e-9);
    }
}
