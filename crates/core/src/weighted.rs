//! Weighted betweenness centrality — Brandes' algorithm with
//! Dijkstra replacing BFS.
//!
//! The paper's §VI flags GPU SSSP (Davidson et al.) and hybrid
//! strategies for it as future work; this module supplies the exact
//! host-side algorithm those strategies would have to match. The
//! structure is identical to the unweighted case — count shortest
//! paths forward, accumulate dependencies in non-increasing distance
//! order — with two changes: a binary heap instead of a queue, and a
//! tolerance when comparing path lengths (floating-point weights make
//! exact equality fragile).

use bc_graph::{VertexId, WeightedCsr};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Relative tolerance for "same shortest-path length" comparisons.
const REL_EPS: f64 = 1e-9;

/// Result of a weighted single-source phase.
#[derive(Clone, Debug)]
pub struct WeightedSingleSource {
    /// Shortest-path distance from the source (`f64::INFINITY` when
    /// unreachable).
    pub dist: Vec<f64>,
    /// Number of shortest paths from the source.
    pub sigma: Vec<f64>,
    /// Vertices in settling (non-decreasing distance) order.
    pub order: Vec<VertexId>,
}

#[derive(PartialEq)]
struct HeapItem {
    dist: f64,
    vertex: VertexId,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by distance.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

fn close(a: f64, b: f64) -> bool {
    // Infinities are never "close" to anything (∞ - ∞ = NaN and
    // ∞ ≤ ∞ would otherwise defeat the relaxation test).
    a.is_finite() && b.is_finite() && (a - b).abs() <= REL_EPS * a.abs().max(b.abs()).max(1.0)
}

/// Dijkstra with shortest-path counting from `source`.
pub fn weighted_single_source(wg: &WeightedCsr, source: VertexId) -> WeightedSingleSource {
    let n = wg.graph().num_vertices();
    let mut dist = vec![f64::INFINITY; n];
    let mut sigma = vec![0.0f64; n];
    let mut order = Vec::with_capacity(n);
    let mut settled = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[source as usize] = 0.0;
    sigma[source as usize] = 1.0;
    heap.push(HeapItem {
        dist: 0.0,
        vertex: source,
    });
    while let Some(HeapItem { dist: d, vertex: v }) = heap.pop() {
        if settled[v as usize] {
            continue;
        }
        settled[v as usize] = true;
        order.push(v);
        for (_, w, weight) in wg.neighbors_weighted(v) {
            let cand = d + weight as f64;
            let cur = dist[w as usize];
            if cand < cur && !close(cand, cur) {
                dist[w as usize] = cand;
                sigma[w as usize] = sigma[v as usize];
                heap.push(HeapItem {
                    dist: cand,
                    vertex: w,
                });
            } else if close(cand, cur) && !settled[w as usize] {
                sigma[w as usize] += sigma[v as usize];
            }
        }
    }
    WeightedSingleSource { dist, sigma, order }
}

/// Exact weighted betweenness centrality (halved for symmetric
/// graphs, like the unweighted convention).
pub fn weighted_betweenness(wg: &WeightedCsr) -> Vec<f64> {
    weighted_betweenness_from_roots(wg, wg.graph().vertices())
}

/// Weighted BC contributions from a root subset.
pub fn weighted_betweenness_from_roots(
    wg: &WeightedCsr,
    roots: impl IntoIterator<Item = VertexId>,
) -> Vec<f64> {
    let n = wg.graph().num_vertices();
    let mut bc = vec![0.0f64; n];
    let mut delta = vec![0.0f64; n];
    for s in roots {
        let ss = weighted_single_source(wg, s);
        delta.fill(0.0);
        for &w in ss.order.iter().rev() {
            // Successor check: v succeeds w iff d(v) = d(w) + weight.
            for (_, v, weight) in wg.neighbors_weighted(w) {
                if ss.dist[v as usize].is_finite()
                    && close(ss.dist[v as usize], ss.dist[w as usize] + weight as f64)
                    && ss.dist[v as usize] > ss.dist[w as usize]
                {
                    delta[w as usize] +=
                        ss.sigma[w as usize] / ss.sigma[v as usize] * (1.0 + delta[v as usize]);
                }
            }
            if w != s {
                bc[w as usize] += delta[w as usize];
            }
        }
    }
    if wg.graph().is_symmetric() {
        for b in bc.iter_mut() {
            *b *= 0.5;
        }
    }
    bc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brandes;
    use bc_graph::gen;

    fn assert_close_scores(a: &[f64], b: &[f64]) {
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-6, "vertex {i}: {x} vs {y}");
        }
    }

    #[test]
    fn unit_weights_match_unweighted() {
        for seed in 0..3 {
            let g = gen::erdos_renyi(48, 120, seed);
            let expect = brandes::betweenness(&g);
            let wg = bc_graph::WeightedCsr::with_unit_weights(g);
            assert_close_scores(&expect, &weighted_betweenness(&wg));
        }
    }

    #[test]
    fn uniform_weights_match_unweighted() {
        // Any uniform weight preserves shortest-path structure.
        let g = gen::watts_strogatz(120, 6, 0.2, 2);
        let expect = brandes::betweenness(&g);
        let m = g.num_directed_edges();
        let wg = bc_graph::WeightedCsr::new(g, vec![3.5; m]);
        assert_close_scores(&expect, &weighted_betweenness(&wg));
    }

    #[test]
    fn weights_reroute_traffic() {
        // Square 0-1-2-3 with a heavy top edge: all 0<->2 traffic
        // goes through 3, not 1.
        let wg = bc_graph::WeightedCsr::from_undirected_edges(
            4,
            [
                (0u32, 1u32, 10.0f32),
                (1, 2, 10.0),
                (0, 3, 1.0),
                (3, 2, 1.0),
            ],
        );
        let bc = weighted_betweenness(&wg);
        assert!(bc[3] > 0.9, "vertex 3 carries the cheap route: {bc:?}");
        assert!(bc[1].abs() < 1e-9, "vertex 1 is bypassed: {bc:?}");
    }

    #[test]
    fn tied_weighted_paths_split_credit() {
        // Diamond with equal total weights on both routes.
        let wg = bc_graph::WeightedCsr::from_undirected_edges(
            4,
            [(0u32, 1u32, 2.0f32), (1, 3, 3.0), (0, 2, 4.0), (2, 3, 1.0)],
        );
        let bc = weighted_betweenness(&wg);
        assert!((bc[1] - 0.5).abs() < 1e-9, "{bc:?}");
        assert!((bc[2] - 0.5).abs() < 1e-9, "{bc:?}");
    }

    #[test]
    fn scale_invariance() {
        let g = gen::erdos_renyi(40, 100, 7);
        let mut wg = bc_graph::WeightedCsr::with_random_weights(g, 1.0, 5.0, 9);
        let before = weighted_betweenness(&wg);
        wg.scale_weights(10.0);
        let after = weighted_betweenness(&wg);
        assert_close_scores(&before, &after);
    }

    #[test]
    fn settling_order_is_sorted() {
        let g = gen::grid(5, 5);
        let wg = bc_graph::WeightedCsr::with_random_weights(g, 0.5, 2.0, 4);
        let ss = weighted_single_source(&wg, 0);
        for w in ss.order.windows(2) {
            assert!(ss.dist[w[0] as usize] <= ss.dist[w[1] as usize] + 1e-12);
        }
        assert_eq!(ss.order.len(), 25);
        assert_eq!(ss.sigma[0], 1.0);
    }

    #[test]
    fn disconnected_vertices_unreached() {
        let g = bc_graph::Csr::from_undirected_edges(4, [(0, 1)]);
        let wg = bc_graph::WeightedCsr::with_unit_weights(g);
        let ss = weighted_single_source(&wg, 0);
        assert!(ss.dist[2].is_infinite());
        assert_eq!(ss.sigma[3], 0.0);
        let bc = weighted_betweenness(&wg);
        assert!(bc.iter().all(|&b| b.abs() < 1e-12));
    }

    #[test]
    fn zero_weight_edges_allowed() {
        // Zero-weight edge merges two vertices distance-wise.
        let wg =
            bc_graph::WeightedCsr::from_undirected_edges(3, [(0u32, 1u32, 0.0f32), (1, 2, 1.0)]);
        let ss = weighted_single_source(&wg, 0);
        assert_eq!(ss.dist[1], 0.0);
        assert_eq!(ss.dist[2], 1.0);
    }
}
