//! Multi-core CPU baseline: coarse-grained Brandes over roots.
//!
//! Each worker owns a private accumulator and a reused
//! [`crate::brandes::BrandesWorkspace`] (the roots are independent —
//! the same property the paper exploits across thread blocks and
//! across GPUs). Shards are merged **in shard-index order** by the
//! deterministic runner in [`crate::parallel`], so — unlike the old
//! reduction-tree formulation, whose merge association depended on
//! worker scheduling — the result is bitwise identical at any thread
//! count. This is the host-side reference for the examples and a
//! sanity baseline for the simulated numbers.

use crate::parallel;
use bc_gpusim::SimError;
use bc_graph::{Csr, VertexId};

/// Exact betweenness centrality using all available CPU cores.
///
/// Errors only if a worker thread panics (contained by
/// [`parallel::cpu_betweenness_from_roots`] into
/// [`SimError::WorkerPanic`] naming the shard).
pub fn betweenness(g: &Csr) -> Result<Vec<f64>, SimError> {
    betweenness_from_roots(g, &(0..g.num_vertices() as u32).collect::<Vec<_>>())
}

/// Parallel BC contributions from an explicit root set (symmetric
/// halving applied, matching [`crate::brandes::betweenness_from_roots`]).
/// Thread count resolves per [`parallel::effective_threads`]`(0)`.
pub fn betweenness_from_roots(g: &Csr, roots: &[VertexId]) -> Result<Vec<f64>, SimError> {
    parallel::cpu_betweenness_from_roots(g, roots, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brandes;
    use bc_graph::gen;

    #[test]
    fn parallel_matches_sequential() {
        for seed in 0..2 {
            let g = gen::erdos_renyi(128, 400, seed);
            let seq = brandes::betweenness(&g);
            let par = betweenness(&g).unwrap();
            for (s, p) in seq.iter().zip(&par) {
                assert!((s - p).abs() < 1e-7, "{s} vs {p}");
            }
        }
    }

    #[test]
    fn subset_of_roots() {
        let g = gen::grid(6, 6);
        let roots: Vec<u32> = (0..18).collect();
        let par = betweenness_from_roots(&g, &roots).unwrap();
        let seq = brandes::betweenness_from_roots(&g, roots.iter().copied());
        for (s, p) in seq.iter().zip(&par) {
            assert!((s - p).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_roots_give_zero() {
        let g = gen::path(8);
        let bc = betweenness_from_roots(&g, &[]).unwrap();
        assert!(bc.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn thread_count_does_not_change_bits() {
        let g = gen::watts_strogatz(200, 6, 0.2, 3);
        let roots: Vec<u32> = (0..200).collect();
        let one = parallel::cpu_betweenness_from_roots(&g, &roots, 1).unwrap();
        for t in [2usize, 4, 8] {
            assert_eq!(
                parallel::cpu_betweenness_from_roots(&g, &roots, t).unwrap(),
                one
            );
        }
    }
}
