//! Multi-core CPU baseline: coarse-grained Brandes over roots with
//! rayon.
//!
//! Each worker owns a private accumulator (the roots are independent
//! — the same property the paper exploits across thread blocks and
//! across GPUs), merged pairwise by rayon's reduction tree. This is
//! the host-side reference for the examples and a sanity baseline
//! for the simulated numbers.

use crate::brandes;
use bc_graph::{Csr, VertexId};
use rayon::prelude::*;

/// Exact betweenness centrality using all available CPU cores.
pub fn betweenness(g: &Csr) -> Vec<f64> {
    betweenness_from_roots(g, &(0..g.num_vertices() as u32).collect::<Vec<_>>())
}

/// Parallel BC contributions from an explicit root set.
pub fn betweenness_from_roots(g: &Csr, roots: &[VertexId]) -> Vec<f64> {
    let n = g.num_vertices();
    let mut bc = roots
        .par_iter()
        .fold(
            || vec![0.0f64; n],
            |mut acc, &s| {
                let ss = brandes::single_source(g, s);
                brandes::accumulate(g, s, &ss, &mut acc);
                acc
            },
        )
        .reduce(
            || vec![0.0f64; n],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(&b) {
                    *x += y;
                }
                a
            },
        );
    if g.is_symmetric() {
        for b in bc.iter_mut() {
            *b *= 0.5;
        }
    }
    bc
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_graph::gen;

    #[test]
    fn parallel_matches_sequential() {
        for seed in 0..2 {
            let g = gen::erdos_renyi(128, 400, seed);
            let seq = brandes::betweenness(&g);
            let par = betweenness(&g);
            for (s, p) in seq.iter().zip(&par) {
                assert!((s - p).abs() < 1e-7, "{s} vs {p}");
            }
        }
    }

    #[test]
    fn subset_of_roots() {
        let g = gen::grid(6, 6);
        let roots: Vec<u32> = (0..18).collect();
        let par = betweenness_from_roots(&g, &roots);
        let seq = brandes::betweenness_from_roots(&g, roots.iter().copied());
        for (s, p) in seq.iter().zip(&par) {
            assert!((s - p).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_roots_give_zero() {
        let g = gen::path(8);
        let bc = betweenness_from_roots(&g, &[]);
        assert!(bc.iter().all(|&x| x == 0.0));
    }
}
