//! The TEPS_BC metric (Eq. 4): for exact BC, every root traverses
//! every edge once, so useful traversals total `m·n` and
//! `TEPS_BC = mn / t`.

/// Traversed edges per second for an exact BC run of `t` seconds on
/// a graph with `m` undirected edges and `n` vertices. Returns 0 for
/// non-positive time.
pub fn teps_bc(m: u64, n: u64, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return 0.0;
    }
    (m as f64) * (n as f64) / seconds
}

/// TEPS adjusted for isolated vertices: the raw formula assumes all
/// `n` roots traverse `m` edges, inflating scores for graphs like
/// `kron_g500-logn20` where many roots are isolated (Table IV's
/// discussion). The adjusted metric only credits connected roots.
pub fn teps_bc_adjusted(m: u64, n: u64, isolated: u64, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        return 0.0;
    }
    (m as f64) * ((n - isolated.min(n)) as f64) / seconds
}

/// Geometric-mean speedup across per-graph speedup factors (how the
/// paper aggregates Table III into "2.71× on average").
pub fn geometric_mean(factors: &[f64]) -> f64 {
    if factors.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = factors.iter().map(|f| f.ln()).sum();
    (log_sum / factors.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn teps_formula() {
        // 1000 edges, 100 vertices, 1 second: 100k TEPS.
        assert!((teps_bc(1000, 100, 1.0) - 1e5).abs() < 1e-9);
        assert_eq!(teps_bc(1000, 100, 0.0), 0.0);
        assert_eq!(teps_bc(1000, 100, -1.0), 0.0);
    }

    #[test]
    fn adjusted_discounts_isolated_roots() {
        let raw = teps_bc(1000, 100, 1.0);
        let adj = teps_bc_adjusted(1000, 100, 25, 1.0);
        assert!((adj - raw * 0.75).abs() < 1e-9);
        // Never negative even with absurd counts.
        assert_eq!(teps_bc_adjusted(10, 5, 100, 1.0), 0.0);
    }

    #[test]
    fn geometric_mean_examples() {
        assert!((geometric_mean(&[4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 1.0);
    }

    #[test]
    fn paper_table3_geomean() {
        // The paper's Table III speedups geometric-mean to ~2.71.
        let speedups = [13.31, 1.01, 1.56, 1.16, 10.23, 1.05, 8.31, 1.34];
        let gm = geometric_mean(&speedups);
        assert!((gm - 2.71).abs() < 0.05, "geomean of Table III = {gm}");
    }
}
