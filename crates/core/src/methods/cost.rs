//! Per-iteration pricing shared by the method implementations.
//!
//! Each function converts a [`LevelInfo`] into the work a particular
//! thread-distribution strategy would perform on that iteration —
//! the quantities §III and §IV of the paper reason about:
//!
//! * **work-efficient** (Algorithms 1–3): threads only touch the
//!   frontier, at the price of SIMT divergence (round-robin lane
//!   assignment over uneven degrees), scattered neighbor gathers,
//!   and an atomicCAS per inspected edge;
//! * **edge-parallel** (Jia et al.): every directed edge is
//!   inspected every iteration — perfectly balanced lanes streaming
//!   coalesced arrays, with waste proportional to the non-frontier
//!   edges;
//! * **vertex-parallel** (Jia et al.): every vertex is checked every
//!   iteration; frontier vertices serialize their whole adjacency
//!   list on one lane (the worst divergence of Figure 2).

use crate::engine::{LevelInfo, Phase, PricedIteration};
use bc_gpusim::{warp, DeviceConfig, IterationWork};
use bc_graph::Csr;

/// Per-vertex state a bottom-up scattered gather touches: σ alone
/// (one 4-byte word). The pull kernel takes frontier membership from
/// the L2-resident bitmap instead of gathering `d`, and never reads
/// δ in the forward sweep, so its working set is a third of
/// [`bc_working_set_bytes`] — the cache-residency edge that makes
/// pull win exactly where push thrashes.
fn pull_working_set_bytes(g: &Csr) -> u64 {
    4 * g.num_vertices() as u64
}

/// Slack sectors charged per frontier adjacency list for
/// misalignment (a list rarely starts on a transaction boundary).
const LIST_MISALIGN_SECTORS: u64 = 1;

/// Bytes the edge-parallel kernel streams per directed edge beyond
/// the two vertex-id words (adjacency target + per-edge source id,
/// priced at the graph's simulated index width): the (sequential,
/// edges are source-sorted) `d[src]` probe and its share of σ reads.
const EP_BYTES_PER_EDGE_STATE: u64 = 8;

/// The per-vertex state a frontier gather touches (d, σ, δ — three
/// 4-byte words), used to size the L2 working set.
fn bc_working_set_bytes(g: &Csr) -> u64 {
    12 * g.num_vertices() as u64
}

/// How the work-efficient kernel appends discovered vertices to
/// `Q_next` (§IV-A's discussion of Merrill et al.'s prefix sum).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueueAppend {
    /// One `atomicAdd` on the queue tail per discovered vertex (the
    /// paper's choice: contention is low because only frontier
    /// threads insert).
    #[default]
    AtomicCas,
    /// Cooperative prefix-sum over the block. Removes the tail
    /// atomics but every SM must scan its whole `Q_curr` — the
    /// overhead the paper measured to be "too large" because each of
    /// the independent per-SM searches pays the full scan alone.
    PrefixSum,
}

/// Where the dependency-accumulation stage finds predecessors
/// (§III-B / §IV-A: the paper *discards* predecessor storage and
/// re-derives them from distances).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PredecessorStorage {
    /// No storage: traverse all neighbors and compare distances
    /// (Green & Bader) — O(n) local state.
    #[default]
    NeighborTraversal,
    /// Jia et al.'s O(m) boolean edge-flag array: the forward pass
    /// marks predecessor edges; the backward pass streams the flags
    /// and only gathers σ/δ for actual predecessors.
    EdgeFlags,
}

/// Design-variant knobs for the work-efficient kernel (the default
/// is the paper's configuration).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkEfficientConfig {
    /// Queue-append strategy.
    pub queue_append: QueueAppend,
    /// Predecessor bookkeeping.
    pub predecessors: PredecessorStorage,
}

/// Price one work-efficient iteration (forward or backward) under a
/// variant configuration.
pub fn work_efficient_level_cfg(
    g: &Csr,
    device: &DeviceConfig,
    level: &LevelInfo<'_>,
    trips: &mut Vec<u32>,
    cfg: WorkEfficientConfig,
) -> PricedIteration {
    let mut p = work_efficient_level(g, device, level, trips);
    let f = level.frontier.len() as u64;
    let e = level.frontier_edges;
    if level.phase == Phase::Forward && cfg.queue_append == QueueAppend::PrefixSum {
        // No tail atomics…
        p.work.atomics = p.work.atomics.saturating_sub(level.discovered);
        // …but a block-wide scan of Q_curr (log-steps over the
        // frontier, all on this one SM) plus two extra barriers'
        // worth of sync, modeled as additional lockstep steps.
        let scan = warp::balanced_warp_steps(f, device.threads_per_block, device.warp_size);
        let log_rounds = 64 - u64::from(device.threads_per_block).leading_zeros() as u64;
        p.work.warp_steps += scan * log_rounds.max(1) + 2 * device.warps_per_block() as u64;
    }
    match (level.phase, cfg.predecessors) {
        (Phase::Forward, PredecessorStorage::EdgeFlags) => {
            // Mark the predecessor flag of each σ-update edge.
            p.work.scattered_accesses += level.updates;
        }
        (Phase::Backward, PredecessorStorage::EdgeFlags) => {
            // Stream the flags (1 byte per edge, coalesced with the
            // adjacency) instead of gathering d[v] per neighbor.
            p.work.scattered_accesses = p.work.scattered_accesses.saturating_sub(e);
            p.work.coalesced_bytes += e;
        }
        _ => {}
    }
    p
}

/// Price one work-efficient iteration (forward or backward).
pub fn work_efficient_level(
    g: &Csr,
    device: &DeviceConfig,
    level: &LevelInfo<'_>,
    trips: &mut Vec<u32>,
) -> PricedIteration {
    trips.clear();
    trips.extend(level.frontier.iter().map(|&v| g.degree(v)));
    let f = level.frontier.len() as u64;
    let e = level.frontier_edges;
    // Vertex ids and CSR offsets stream at the graph's simulated
    // index width (4 bytes for u32 layouts, 8 for u64).
    let ib = g.index_bytes();
    let warp_steps =
        warp::round_robin_warp_steps(trips, device.threads_per_block, device.warp_size);
    let (scattered, atomics) = match level.phase {
        // Forward: CAS on d[w] per edge, σ atomicAdd per update,
        // queue-counter atomic per discovered vertex, plus the
        // offsets lookup of each frontier vertex. All of these are
        // dependent gathers chained behind the adjacency read.
        Phase::Forward => (
            e + level.updates + 2 * f,
            e + level.updates + level.discovered,
        ),
        // Backward (successor check): plain reads of d[v], then
        // σ[v], δ[v] on matches — no atomics at all.
        Phase::Backward => (e + 2 * level.updates + 2 * f, 0),
    };
    PricedIteration {
        work: IterationWork {
            warp_steps,
            coalesced_bytes: f * ib
                + level.discovered * ib
                + e * ib
                + f * LIST_MISALIGN_SECTORS * device.scattered_tx_bytes as u64,
            scattered_accesses: scattered,
            working_set_bytes: bc_working_set_bytes(g),
            atomics,
            ..Default::default()
        },
        wasted_edges: 0,
        wasted_vertex_checks: 0,
    }
}

/// Price one bottom-up (pull) forward iteration: every unvisited
/// vertex scans its own adjacency for parents in the frontier
/// bitmap, with no per-edge CAS, no σ `atomicAdd`, and no queue-tail
/// contention — the only synchronization left is one word-granular
/// `atomicOr` into `F_next` per discovered vertex.
///
/// The level the caller passes must carry
/// [`PullLevelInfo`](crate::engine::PullLevelInfo) statistics
/// (`level.pull`), which the engine fills whenever a level executes
/// bottom-up.
///
/// Cost structure:
/// * the visited-bitmap scan streams `n/32` words and balances one
///   lane per vertex bit;
/// * adjacency scans stream the unvisited vertices' lists
///   (coalesced) with round-robin divergence over their degrees;
/// * each inspected edge probes one frontier-bitmap word — priced as
///   an L2-latency [`IterationWork::bitmap_accesses`] probe, not a
///   DRAM gather;
/// * σ parent gathers (`updates`) and the owner's d/σ stores
///   (`2 × discovered`) are the only scattered word traffic, against
///   a σ-only working set;
/// * the F_next→`S` compaction (the bookkeeping pass that keeps the
///   backward sweep unchanged) streams the bitmap once more and
///   appends `discovered` queue slots;
/// * a push→pull switch additionally scatters `Q_curr` into frontier
///   bits and streams `d` once to seed the visited bitmap.
pub fn bottom_up_level(g: &Csr, device: &DeviceConfig, level: &LevelInfo<'_>) -> PricedIteration {
    let pull = level
        .pull
        .as_ref()
        .expect("bottom-up pricing requires the engine's pull statistics");
    let n = g.num_vertices() as u64;
    let words = n.div_ceil(32);
    let tx = device.scattered_tx_bytes as u64;
    let ib = g.index_bytes();
    let scan_steps = warp::balanced_warp_steps(n, device.threads_per_block, device.warp_size);
    let adj_steps = warp::round_robin_warp_steps(
        pull.unvisited_degrees,
        device.threads_per_block,
        device.warp_size,
    );
    let mut work = IterationWork {
        warp_steps: scan_steps + adj_steps,
        coalesced_bytes: words * 4                       // visited-bitmap stream
            + pull.unvisited * 2 * ib                    // offsets pair per scanned list
            + pull.unvisited_edges * ib                  // adjacency lists
            + pull.unvisited * LIST_MISALIGN_SECTORS * tx
            + words * 4                                  // F_next compaction stream
            + level.discovered * ib, // S appends
        bitmap_accesses: pull.unvisited_edges,
        scattered_accesses: level.updates + 2 * level.discovered,
        working_set_bytes: pull_working_set_bytes(g),
        atomics: level.discovered,
        ..Default::default()
    };
    if pull.rebuilt_frontier_bitmap {
        // Direction switch: the frontier-compact kernel scatters
        // Q_curr into the hierarchical bitmap — one leaf-word and one
        // summary-word atomicOr per frontier vertex, both traced and
        // therefore both priced — and the visited bitmap is seeded by
        // streaming d once. The materialized words themselves
        // (`frontier_words` leaves + their summaries) are written
        // back through the coalesced store path.
        let f = level.frontier.len() as u64;
        work.random_accesses += f;
        work.atomics += 2 * f;
        work.coalesced_bytes += n * 4 + words * 4 + 4 * (pull.frontier_words + pull.summary_words);
    }
    PricedIteration {
        work,
        wasted_edges: pull.unvisited_edges.saturating_sub(level.updates),
        wasted_vertex_checks: n.saturating_sub(pull.unvisited),
    }
}

/// Price one edge-parallel iteration: all `2m` directed edges are
/// inspected regardless of the frontier.
pub fn edge_parallel_level(
    g: &Csr,
    device: &DeviceConfig,
    level: &LevelInfo<'_>,
) -> PricedIteration {
    let m2 = g.num_directed_edges() as u64;
    let e = level.frontier_edges;
    let warp_steps = warp::balanced_warp_steps(m2, device.threads_per_block, device.warp_size);
    let coalesced_bytes = m2 * (EP_BYTES_PER_EDGE_STATE + 2 * g.index_bytes());
    // Only edges whose source is on the frontier touch destination
    // state — and those probes are independent per-thread (the
    // edge-parallel strength), so they are bandwidth- rather than
    // latency-priced.
    let (random, atomics) = match level.phase {
        Phase::Forward => (e + level.updates, e + level.updates),
        // Edge-parallel accumulation *does* need atomics (multiple
        // threads share an ancestor — §IV-A's closing observation).
        Phase::Backward => (e + 2 * level.updates, level.updates),
    };
    PricedIteration {
        work: IterationWork {
            warp_steps,
            coalesced_bytes,
            random_accesses: random,
            working_set_bytes: bc_working_set_bytes(g),
            atomics,
            ..Default::default()
        },
        wasted_edges: m2.saturating_sub(e),
        wasted_vertex_checks: 0,
    }
}

/// Lane scratch for the vertex-parallel divergence computation.
#[derive(Clone, Debug, Default)]
pub struct VertexParallelScratch {
    lane_extra: Vec<u64>,
}

/// Price one vertex-parallel iteration: all `n` vertices are
/// status-checked; frontier vertices serialize their adjacency list
/// on their lane (thread `v % threads` owns vertex `v`).
pub fn vertex_parallel_level(
    g: &Csr,
    device: &DeviceConfig,
    level: &LevelInfo<'_>,
    scratch: &mut VertexParallelScratch,
) -> PricedIteration {
    let n = g.num_vertices() as u64;
    let f = level.frontier.len() as u64;
    let e = level.frontier_edges;
    let threads = device.threads_per_block as usize;
    scratch.lane_extra.clear();
    scratch.lane_extra.resize(threads, 0);
    for &v in level.frontier {
        scratch.lane_extra[v as usize % threads] += g.degree(v) as u64;
    }
    let extra_steps: u64 = scratch
        .lane_extra
        .chunks(device.warp_size as usize)
        .map(|w| w.iter().copied().max().unwrap_or(0))
        .sum();
    let base_steps = warp::balanced_warp_steps(n, device.threads_per_block, device.warp_size);
    let (scattered, atomics) = match level.phase {
        Phase::Forward => (e + level.updates, e + level.updates),
        Phase::Backward => (e + 2 * level.updates, 0),
    };
    PricedIteration {
        work: IterationWork {
            warp_steps: base_steps + extra_steps,
            // d[v] and the offsets array stream sequentially.
            coalesced_bytes: n * (4 + 2 * g.index_bytes()) + e * g.index_bytes(),
            scattered_accesses: scattered,
            working_set_bytes: bc_working_set_bytes(g),
            atomics,
            ..Default::default()
        },
        wasted_edges: 0,
        wasted_vertex_checks: n.saturating_sub(f),
    }
}

/// Price one GPU-FAN iteration: edge-parallel work cooperatively
/// split across every SM (fine-grained parallelism), at the cost of
/// a device-wide synchronization per iteration.
pub fn gpu_fan_level(g: &Csr, device: &DeviceConfig, level: &LevelInfo<'_>) -> PricedIteration {
    let mut p = edge_parallel_level(g, device, level);
    let sms = device.num_sms as u64;
    p.work.warp_steps = p.work.warp_steps.div_ceil(sms);
    p.work.coalesced_bytes = p.work.coalesced_bytes.div_ceil(sms);
    p.work.random_accesses = p.work.random_accesses.div_ceil(sms);
    p.work.atomics = p.work.atomics.div_ceil(sms);
    // The O(n²) predecessor matrix adds a random write per σ update
    // and a random read per δ contribution.
    p.work.random_accesses += level.updates.div_ceil(sms);
    p.work.global_sync = true;
    p
}

/// Device-memory footprint of each method's per-run state (graph
/// arrays excluded — those are charged separately).
pub mod footprint {
    use bc_gpusim::DeviceConfig;
    use bc_graph::Csr;

    /// CSR arrays on the device.
    pub fn graph_bytes(g: &Csr) -> u64 {
        g.storage_bytes()
    }

    /// Work-efficient locals: d, σ, δ, Q_curr, Q_next, S, ends — all
    /// O(n) — per resident block (one per SM).
    pub fn work_efficient_bytes(g: &Csr, device: &DeviceConfig) -> u64 {
        let n = g.num_vertices() as u64;
        7 * 4 * n * device.num_sms as u64
    }

    /// Work-efficient locals under a variant configuration: the
    /// edge-flag predecessor store adds an O(m) byte array per
    /// resident block — the scalability cost the paper's
    /// neighbor-traversal choice avoids.
    pub fn work_efficient_bytes_cfg(
        g: &Csr,
        device: &DeviceConfig,
        cfg: super::WorkEfficientConfig,
    ) -> u64 {
        let base = work_efficient_bytes(g, device);
        match cfg.predecessors {
            super::PredecessorStorage::NeighborTraversal => base,
            super::PredecessorStorage::EdgeFlags => {
                base + g.num_directed_edges() as u64 * device.num_sms as u64
            }
        }
    }

    /// Direction-optimizing locals: the work-efficient arrays plus
    /// three n-bit bitmaps (visited, `F_curr`, `F_next`) per
    /// resident block — a 32× denser frontier representation than
    /// another queue — and the two compressed frontiers' summary
    /// levels (one bit per 32 leaf words, so one word per 1024
    /// vertices).
    pub fn direction_optimizing_bytes(g: &Csr, device: &DeviceConfig) -> u64 {
        let n = g.num_vertices() as u64;
        let summaries = 2 * 4 * n.div_ceil(1024);
        work_efficient_bytes(g, device) + (3 * n.div_ceil(8) + summaries) * device.num_sms as u64
    }

    /// Jia et al. locals: d, σ, δ O(n) plus the O(m) boolean
    /// predecessor map, per resident block, plus one shared per-edge
    /// source array.
    pub fn edge_parallel_bytes(g: &Csr, device: &DeviceConfig) -> u64 {
        let n = g.num_vertices() as u64;
        let m2 = g.num_directed_edges() as u64;
        (3 * 4 * n + m2) * device.num_sms as u64 + 4 * m2
    }

    /// GPU-FAN locals: d, σ, δ O(n) plus the O(n²) predecessor
    /// matrix (4-byte entries), single-rooted so one copy.
    pub fn gpu_fan_bytes(g: &Csr, _device: &DeviceConfig) -> u64 {
        let n = g.num_vertices() as u64;
        3 * 4 * n + 4 * n * n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Phase, PullLevelInfo, Traversal};
    use bc_graph::gen;

    fn level<'a>(frontier: &'a [u32], g: &Csr, phase: Phase) -> LevelInfo<'a> {
        LevelInfo {
            phase,
            depth: 1,
            traversal: Traversal::Push,
            frontier,
            frontier_edges: frontier.iter().map(|&v| g.degree(v) as u64).sum(),
            discovered: 3,
            updates: 4,
            pull: None,
        }
    }

    fn pull_level<'a>(
        frontier: &'a [u32],
        g: &Csr,
        degrees: &'a [u32],
        rebuilt: bool,
    ) -> LevelInfo<'a> {
        let unvisited_edges = degrees.iter().map(|&d| d as u64).sum();
        LevelInfo {
            phase: Phase::Forward,
            depth: 1,
            traversal: Traversal::Pull,
            frontier,
            frontier_edges: frontier.iter().map(|&v| g.degree(v) as u64).sum(),
            discovered: 3,
            updates: 4,
            pull: Some(PullLevelInfo {
                unvisited: degrees.len() as u64,
                unvisited_edges,
                rebuilt_frontier_bitmap: rebuilt,
                frontier_words: frontier.len().div_ceil(32) as u64,
                summary_words: 1,
                unvisited_degrees: degrees,
            }),
        }
    }

    #[test]
    fn work_efficient_scales_with_frontier_not_graph() {
        let g = gen::grid(32, 32);
        let d = DeviceConfig::gtx_titan();
        let mut trips = Vec::new();
        let small = level(&[5, 6], &g, Phase::Forward);
        let big: Vec<u32> = (0..512).collect();
        let big = level(&big, &g, Phase::Forward);
        let ps = work_efficient_level(&g, &d, &small, &mut trips);
        let pb = work_efficient_level(&g, &d, &big, &mut trips);
        assert!(pb.work.warp_steps > ps.work.warp_steps * 10);
        assert_eq!(ps.wasted_edges, 0);
    }

    #[test]
    fn edge_parallel_cost_is_frontier_independent() {
        let g = gen::grid(32, 32);
        let d = DeviceConfig::gtx_titan();
        let small = level(&[5], &g, Phase::Forward);
        let big: Vec<u32> = (0..512).collect();
        let bigl = level(&big, &g, Phase::Forward);
        let ps = edge_parallel_level(&g, &d, &small);
        let pb = edge_parallel_level(&g, &d, &bigl);
        assert_eq!(ps.work.warp_steps, pb.work.warp_steps);
        assert_eq!(ps.work.coalesced_bytes, pb.work.coalesced_bytes);
        assert!(
            ps.wasted_edges > pb.wasted_edges,
            "bigger frontier wastes less"
        );
    }

    #[test]
    fn edge_parallel_wastes_non_frontier_edges() {
        let g = gen::grid(32, 32);
        let d = DeviceConfig::gtx_titan();
        let l = level(&[5], &g, Phase::Forward);
        let p = edge_parallel_level(&g, &d, &l);
        let m2 = g.num_directed_edges() as u64;
        assert_eq!(p.wasted_edges, m2 - l.frontier_edges);
    }

    #[test]
    fn vertex_parallel_divergence_penalty() {
        // A star: the hub serializes all its edges on one lane.
        let g = gen::star(1024);
        let d = DeviceConfig::gtx_titan();
        let mut scratch = VertexParallelScratch::default();
        let hub_level = level(&[0], &g, Phase::Forward);
        let p = vertex_parallel_level(&g, &d, &hub_level, &mut scratch);
        // The hub's 1023 edges run on a single lane: at least that
        // many steps beyond the base scan.
        assert!(p.work.warp_steps >= 1023);
        assert_eq!(p.wasted_vertex_checks, 1023);
    }

    #[test]
    fn backward_levels_have_no_atomics_only_for_work_efficient() {
        let g = gen::grid(8, 8);
        let d = DeviceConfig::gtx_titan();
        let mut trips = Vec::new();
        let l = level(&[1, 2, 3], &g, Phase::Backward);
        let we = work_efficient_level(&g, &d, &l, &mut trips);
        assert_eq!(we.work.atomics, 0, "successor approach needs no atomics");
        let ep = edge_parallel_level(&g, &d, &l);
        assert!(
            ep.work.atomics > 0,
            "edge-parallel accumulation still needs atomics"
        );
    }

    #[test]
    fn gpu_fan_divides_work_but_pays_global_sync() {
        let g = gen::grid(16, 16);
        let d = DeviceConfig::gtx_titan();
        let l = level(&[1, 2], &g, Phase::Forward);
        let ep = edge_parallel_level(&g, &d, &l);
        let fan = gpu_fan_level(&g, &d, &l);
        assert!(fan.work.warp_steps < ep.work.warp_steps);
        assert!(fan.work.global_sync);
        assert!(!ep.work.global_sync);
    }

    #[test]
    fn bottom_up_prices_only_one_atomic_per_discovery() {
        let g = gen::grid(32, 32);
        let d = DeviceConfig::gtx_titan();
        let frontier: Vec<u32> = (0..100).collect();
        let degrees: Vec<u32> = vec![4; 500];
        let l = pull_level(&frontier, &g, &degrees, false);
        let p = bottom_up_level(&g, &d, &l);
        assert_eq!(p.work.atomics, l.discovered);
        assert_eq!(p.work.bitmap_accesses, 2000, "one probe per scanned edge");
        assert_eq!(p.wasted_edges, 2000 - l.updates);
        // σ-only working set, a third of push's d+σ+δ.
        assert_eq!(p.work.working_set_bytes * 3, 12 * g.num_vertices() as u64);
        // The rebuild surcharge only applies on a push→pull switch,
        // and prices the frontier-compact kernel's two atomicOrs
        // (leaf + summary word) per frontier vertex on top of the
        // per-discovery F_next atomics.
        let switched = bottom_up_level(&g, &d, &pull_level(&frontier, &g, &degrees, true));
        assert!(switched.work.random_accesses > p.work.random_accesses);
        assert!(switched.work.coalesced_bytes > p.work.coalesced_bytes);
        assert_eq!(
            switched.work.atomics,
            p.work.atomics + 2 * frontier.len() as u64
        );
    }

    #[test]
    fn wide_index_layouts_price_more_coalesced_traffic() {
        // The same graph under a simulated u64 index layout streams
        // twice the bytes per vertex id / offset — the adaptive-width
        // cost the loader avoids by defaulting to u32.
        let g = gen::grid(32, 32);
        let wide = g.clone().with_index_width(bc_graph::CsrIndex::U64);
        let d = DeviceConfig::gtx_titan();
        let mut trips = Vec::new();
        let frontier: Vec<u32> = (0..128).collect();
        let l = level(&frontier, &g, Phase::Forward);
        let narrow_we = work_efficient_level(&g, &d, &l, &mut trips);
        let wide_we = work_efficient_level(&wide, &d, &l, &mut trips);
        assert!(wide_we.work.coalesced_bytes > narrow_we.work.coalesced_bytes);
        assert_eq!(narrow_we.work.warp_steps, wide_we.work.warp_steps);
        let narrow_ep = edge_parallel_level(&g, &d, &l);
        let wide_ep = edge_parallel_level(&wide, &d, &l);
        assert!(wide_ep.work.coalesced_bytes > narrow_ep.work.coalesced_bytes);
        let degrees: Vec<u32> = vec![4; 500];
        let pl = pull_level(&frontier, &g, &degrees, false);
        let pl_wide = pull_level(&frontier, &wide, &degrees, false);
        let narrow_bu = bottom_up_level(&g, &d, &pl);
        let wide_bu = bottom_up_level(&wide, &d, &pl_wide);
        assert!(wide_bu.work.coalesced_bytes > narrow_bu.work.coalesced_bytes);
    }

    #[test]
    fn bottom_up_beats_work_efficient_on_saturated_levels_of_big_graphs() {
        // A graph whose 12n push working set spills L2 while pull's
        // 4n stays resident: the regime the direction switch targets.
        let g = gen::watts_strogatz(200_000, 10, 0.05, 7);
        let d = DeviceConfig::gtx_titan();
        let mut trips = Vec::new();
        // A saturated level: half the graph on the frontier, most of
        // the rest still unvisited.
        let frontier: Vec<u32> = (0..100_000).collect();
        let degrees: Vec<u32> = vec![10; 90_000];
        let mut l = pull_level(&frontier, &g, &degrees, true);
        l.discovered = 80_000;
        l.updates = 150_000;
        let pull = bottom_up_level(&g, &d, &l);
        let push = work_efficient_level(&g, &d, &l, &mut trips);
        let pull_s = d.block_iteration_seconds(&pull.work);
        let push_s = d.block_iteration_seconds(&push.work);
        assert!(
            pull_s * 2.0 < push_s,
            "saturated pull {pull_s} vs push {push_s}"
        );
    }

    #[test]
    fn footprints_ordering() {
        let g = gen::grid(64, 64); // n = 4096
        let d = DeviceConfig::gtx_titan();
        let we = footprint::work_efficient_bytes(&g, &d);
        let ep = footprint::edge_parallel_bytes(&g, &d);
        let fan = footprint::gpu_fan_bytes(&g, &d);
        // O(n^2) dwarfs everything at this size.
        assert!(fan > ep && fan > we);
        assert_eq!(fan, 3 * 4 * 4096 + 4 * 4096 * 4096);
    }

    #[test]
    fn prefix_sum_variant_trades_atomics_for_scan_steps() {
        let g = gen::grid(32, 32);
        let d = DeviceConfig::gtx_titan();
        let mut trips = Vec::new();
        let frontier: Vec<u32> = (0..600).collect();
        let l = level(&frontier, &g, Phase::Forward);
        let base = work_efficient_level_cfg(&g, &d, &l, &mut trips, WorkEfficientConfig::default());
        let scan = work_efficient_level_cfg(
            &g,
            &d,
            &l,
            &mut trips,
            WorkEfficientConfig {
                queue_append: QueueAppend::PrefixSum,
                ..Default::default()
            },
        );
        assert!(
            scan.work.atomics < base.work.atomics,
            "scan removes tail atomics"
        );
        assert!(
            scan.work.warp_steps > base.work.warp_steps,
            "scan adds lockstep work"
        );
    }

    #[test]
    fn edge_flag_variant_shifts_backward_traffic() {
        let g = gen::grid(32, 32);
        let d = DeviceConfig::gtx_titan();
        let mut trips = Vec::new();
        let frontier: Vec<u32> = (0..64).collect();
        let l = level(&frontier, &g, Phase::Backward);
        let base = work_efficient_level_cfg(&g, &d, &l, &mut trips, WorkEfficientConfig::default());
        let flags = work_efficient_level_cfg(
            &g,
            &d,
            &l,
            &mut trips,
            WorkEfficientConfig {
                predecessors: PredecessorStorage::EdgeFlags,
                ..Default::default()
            },
        );
        assert!(flags.work.scattered_accesses < base.work.scattered_accesses);
        assert!(flags.work.coalesced_bytes > base.work.coalesced_bytes);
        // And the memory bill comes due.
        let cfg = WorkEfficientConfig {
            predecessors: PredecessorStorage::EdgeFlags,
            ..Default::default()
        };
        assert!(
            footprint::work_efficient_bytes_cfg(&g, &d, cfg)
                > footprint::work_efficient_bytes(&g, &d)
        );
    }

    #[test]
    fn gpu_fan_exhausts_titan_memory_near_paper_scale() {
        // 6 GB / 4 B per predecessor entry = 1.5e9 entries: n ≈ 38.7k.
        // The paper's Figure 5 shows GPU-FAN dying between scale 2^15
        // and 2^16 — reproduce that boundary.
        let d = DeviceConfig::gtx_titan();
        let ok = gen::grid(181, 181); // n ≈ 32.7k
        let too_big = gen::grid(256, 256); // n = 65.5k
        assert!(footprint::gpu_fan_bytes(&ok, &d) < d.global_mem_bytes);
        assert!(footprint::gpu_fan_bytes(&too_big, &d) > d.global_mem_bytes);
    }
}
