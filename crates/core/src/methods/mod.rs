//! The parallelization strategies: cost models, the strategy-
//! switching logic of the hybrid and sampling methods, and literal
//! reference implementations of the prior-work traversals.

pub mod cost;
pub mod models;
pub mod reference;
