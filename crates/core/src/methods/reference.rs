//! Literal reference implementations of the prior-work traversals.
//!
//! These execute the *actual* O(n²+m)-style loops — scanning every
//! vertex (or every edge) at every depth — rather than the shared
//! level-synchronous engine. They exist to demonstrate that the
//! wasteful traversal pattern computes the same function (the
//! simulated methods reuse the engine and only differ in pricing)
//! and to serve as independent oracles in tests. Only use them on
//! small graphs; that asymptotic inefficiency is the paper's point.

use bc_graph::{Csr, VertexId};

const INF: u32 = u32::MAX;

/// Betweenness centrality via the literal vertex-parallel traversal:
/// one pass over all vertices per BFS depth.
pub fn vertex_parallel_bc(g: &Csr) -> Vec<f64> {
    bc_with(g, |g, dist, sigma, depth| {
        let mut changed = false;
        for v in g.vertices() {
            if dist[v as usize] != depth {
                continue;
            }
            for &w in g.neighbors(v) {
                if dist[w as usize] == INF {
                    dist[w as usize] = depth + 1;
                    changed = true;
                }
                if dist[w as usize] == depth + 1 {
                    sigma[w as usize] += sigma[v as usize];
                }
            }
        }
        changed
    })
}

/// Betweenness centrality via the literal edge-parallel traversal:
/// one pass over all directed edges per BFS depth.
pub fn edge_parallel_bc(g: &Csr) -> Vec<f64> {
    let sources = g.arc_sources();
    bc_with(g, move |g, dist, sigma, depth| {
        let mut changed = false;
        // First settle distances for the whole depth, then count
        // paths — mirroring the two-kernel structure real
        // edge-parallel implementations use to avoid ordering races.
        for (e, &w) in g.adj_array().iter().enumerate() {
            let u = sources[e];
            if dist[u as usize] == depth && dist[w as usize] == INF {
                dist[w as usize] = depth + 1;
                changed = true;
            }
        }
        for (e, &w) in g.adj_array().iter().enumerate() {
            let u = sources[e];
            if dist[u as usize] == depth && dist[w as usize] == depth + 1 {
                sigma[w as usize] += sigma[u as usize];
            }
        }
        changed
    })
}

/// Shared scaffolding: run `expand(depth)` until fixpoint per root,
/// then accumulate dependencies with a full scan per depth.
fn bc_with(g: &Csr, mut expand: impl FnMut(&Csr, &mut [u32], &mut [f64], u32) -> bool) -> Vec<f64> {
    let n = g.num_vertices();
    let mut bc = vec![0.0f64; n];
    let mut dist = vec![INF; n];
    let mut sigma = vec![0.0f64; n];
    let mut delta = vec![0.0f64; n];
    for s in g.vertices() {
        dist.fill(INF);
        sigma.fill(0.0);
        delta.fill(0.0);
        dist[s as usize] = 0;
        sigma[s as usize] = 1.0;
        let mut depth = 0u32;
        while expand(g, &mut dist, &mut sigma, depth) {
            depth += 1;
        }
        // Dependency accumulation, scanning all vertices per depth
        // (the successor formulation).
        let mut d = depth;
        while d > 0 {
            for w in g.vertices() {
                if dist[w as usize] != d {
                    continue;
                }
                let mut dsw = 0.0;
                for &v in g.neighbors(w) {
                    if dist[v as usize] == d + 1 {
                        dsw += sigma[w as usize] / sigma[v as usize] * (1.0 + delta[v as usize]);
                    }
                }
                delta[w as usize] = dsw;
            }
            d -= 1;
        }
        for v in g.vertices() {
            if v != s && dist[v as usize] != INF {
                bc[v as usize] += delta[v as usize];
            }
        }
    }
    if g.is_symmetric() {
        for b in bc.iter_mut() {
            *b *= 0.5;
        }
    }
    bc
}

/// Count the total edge inspections the vertex-parallel traversal
/// performs for one root (all vertices scanned per depth), used by
/// work-efficiency comparisons in tests and docs.
pub fn vertex_parallel_inspections(g: &Csr, root: VertexId) -> u64 {
    let ecc = bc_graph::traversal::eccentricity(g, root) as u64;
    // Every depth scans every vertex's status; frontier vertices
    // additionally traverse their edges. Forward pass runs ecc + 1
    // depths.
    (ecc + 1) * g.num_vertices() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brandes;
    use bc_graph::gen;

    fn assert_close(a: &[f64], b: &[f64]) {
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-7, "vertex {i}: {x} vs {y}");
        }
    }

    #[test]
    fn vertex_parallel_matches_brandes() {
        for seed in 0..3 {
            let g = gen::erdos_renyi(48, 120, seed);
            assert_close(&brandes::betweenness(&g), &vertex_parallel_bc(&g));
        }
        let g = gen::grid(6, 7);
        assert_close(&brandes::betweenness(&g), &vertex_parallel_bc(&g));
    }

    #[test]
    fn edge_parallel_matches_brandes() {
        for seed in 0..3 {
            let g = gen::erdos_renyi(48, 120, seed + 10);
            assert_close(&brandes::betweenness(&g), &edge_parallel_bc(&g));
        }
        let g = gen::balanced_tree(3, 3);
        assert_close(&brandes::betweenness(&g), &edge_parallel_bc(&g));
    }

    #[test]
    fn references_handle_disconnected_graphs() {
        let g = bc_graph::Csr::from_undirected_edges(7, [(0, 1), (1, 2), (4, 5), (5, 6)]);
        let expect = brandes::betweenness(&g);
        assert_close(&expect, &vertex_parallel_bc(&g));
        assert_close(&expect, &edge_parallel_bc(&g));
    }

    #[test]
    fn inspection_count_grows_with_diameter() {
        let path = gen::path(64);
        let star = gen::star(64);
        assert!(
            vertex_parallel_inspections(&path, 0) > 10 * vertex_parallel_inspections(&star, 0),
            "high-diameter graphs waste far more vertex checks"
        );
    }
}
