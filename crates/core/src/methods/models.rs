//! [`CostModel`] implementations for each parallelization strategy,
//! including the per-iteration strategy switching of the hybrid
//! (Algorithm 4) and sampling (Algorithm 5) methods.

use crate::engine::{CostModel, LevelInfo, Phase, PricedIteration};
use crate::methods::cost;
use crate::parallel::ShardableCostModel;
use bc_gpusim::DeviceConfig;
use bc_graph::{Csr, VertexId};
use serde::{Deserialize, Serialize};

/// The two base strategies the hybrid methods alternate between.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Queue-based frontier traversal (this paper).
    WorkEfficient,
    /// All-edges inspection (Jia et al.).
    EdgeParallel,
}

/// Work-efficient pricing for every iteration.
#[derive(Debug, Default)]
pub struct WorkEfficientModel {
    trips: Vec<u32>,
    config: cost::WorkEfficientConfig,
}

impl WorkEfficientModel {
    /// A model with non-default design-variant knobs (see
    /// [`cost::WorkEfficientConfig`]) — used by the §IV-A ablations.
    pub fn with_config(config: cost::WorkEfficientConfig) -> Self {
        WorkEfficientModel {
            trips: Vec::new(),
            config,
        }
    }
}

impl CostModel for WorkEfficientModel {
    fn price(&mut self, g: &Csr, device: &DeviceConfig, level: &LevelInfo<'_>) -> PricedIteration {
        cost::work_efficient_level_cfg(g, device, level, &mut self.trips, self.config)
    }
}

/// Edge-parallel pricing for every iteration.
#[derive(Debug, Default)]
pub struct EdgeParallelModel;

impl CostModel for EdgeParallelModel {
    fn price(&mut self, g: &Csr, device: &DeviceConfig, level: &LevelInfo<'_>) -> PricedIteration {
        cost::edge_parallel_level(g, device, level)
    }
}

/// Vertex-parallel pricing for every iteration.
#[derive(Debug, Default)]
pub struct VertexParallelModel {
    scratch: cost::VertexParallelScratch,
}

impl CostModel for VertexParallelModel {
    fn price(&mut self, g: &Csr, device: &DeviceConfig, level: &LevelInfo<'_>) -> PricedIteration {
        cost::vertex_parallel_level(g, device, level, &mut self.scratch)
    }
}

/// GPU-FAN pricing: fine-grained edge-parallel with device-wide
/// synchronization each iteration.
#[derive(Debug, Default)]
pub struct GpuFanModel;

impl CostModel for GpuFanModel {
    fn price(&mut self, g: &Csr, device: &DeviceConfig, level: &LevelInfo<'_>) -> PricedIteration {
        cost::gpu_fan_level(g, device, level)
    }
}

/// Parameters of the hybrid method (Algorithm 4). The paper found
/// α = 768 and β = 512 best across its inputs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HybridParams {
    /// Frontier-change threshold that triggers strategy
    /// reconsideration.
    pub alpha: u64,
    /// Next-frontier size above which the edge-parallel method is
    /// chosen.
    pub beta: u64,
}

impl Default for HybridParams {
    fn default() -> Self {
        HybridParams {
            alpha: 768,
            beta: 512,
        }
    }
}

/// Hybrid pricing: starts work-efficient, reconsiders whenever the
/// frontier size changes by more than α, switching to edge-parallel
/// when the next frontier exceeds β.
#[derive(Debug)]
pub struct HybridModel {
    params: HybridParams,
    strategy: Strategy,
    /// Strategy used at each forward depth, replayed by the backward
    /// sweep (the accumulation processes the same levels).
    forward_choices: Vec<Strategy>,
    trips: Vec<u32>,
    /// How many iterations ran under each strategy (for reports and
    /// tests).
    pub work_efficient_iterations: u64,
    /// See [`HybridModel::work_efficient_iterations`].
    pub edge_parallel_iterations: u64,
}

impl HybridModel {
    /// A hybrid model with the given α/β.
    pub fn new(params: HybridParams) -> Self {
        HybridModel {
            params,
            strategy: Strategy::WorkEfficient,
            forward_choices: Vec::new(),
            trips: Vec::new(),
            work_efficient_iterations: 0,
            edge_parallel_iterations: 0,
        }
    }

    fn price_with(
        &mut self,
        strategy: Strategy,
        g: &Csr,
        device: &DeviceConfig,
        level: &LevelInfo<'_>,
    ) -> PricedIteration {
        match strategy {
            Strategy::WorkEfficient => {
                self.work_efficient_iterations += 1;
                cost::work_efficient_level(g, device, level, &mut self.trips)
            }
            Strategy::EdgeParallel => {
                self.edge_parallel_iterations += 1;
                cost::edge_parallel_level(g, device, level)
            }
        }
    }
}

impl CostModel for HybridModel {
    fn begin_root(&mut self, _g: &Csr, _root: VertexId) {
        // Each search starts work-efficient: the initial frontier is
        // just the root, and a wrong edge-parallel guess is the
        // costlier mistake (§IV-B).
        self.strategy = Strategy::WorkEfficient;
        self.forward_choices.clear();
    }

    fn price(&mut self, g: &Csr, device: &DeviceConfig, level: &LevelInfo<'_>) -> PricedIteration {
        match level.phase {
            Phase::Forward => {
                let strategy = self.strategy;
                self.forward_choices.push(strategy);
                let priced = self.price_with(strategy, g, device, level);
                // Algorithm 4: reconsider only when the frontier
                // changes substantially.
                let q_curr = level.frontier.len() as u64;
                let q_change = level.discovered.abs_diff(q_curr);
                if q_change > self.params.alpha {
                    self.strategy = if level.discovered > self.params.beta {
                        Strategy::EdgeParallel
                    } else {
                        Strategy::WorkEfficient
                    };
                }
                priced
            }
            Phase::Backward => {
                let strategy = self
                    .forward_choices
                    .get(level.depth as usize)
                    .copied()
                    .unwrap_or(Strategy::WorkEfficient);
                self.price_with(strategy, g, device, level)
            }
        }
    }
}

/// Parameters of the sampling method (Algorithm 5).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SamplingParams {
    /// Roots processed work-efficiently to estimate the BFS depth
    /// distribution.
    pub n_samps: usize,
    /// Edge-parallel is chosen when the median max-depth is below
    /// `gamma * log2(n)`.
    pub gamma: f64,
    /// Even under the edge-parallel decision, iterations with a
    /// frontier smaller than this fall back to work-efficient
    /// ("designed to scale with the architecture").
    pub min_frontier: usize,
}

impl Default for SamplingParams {
    fn default() -> Self {
        SamplingParams {
            n_samps: 512,
            gamma: 4.0,
            min_frontier: 512,
        }
    }
}

impl SamplingParams {
    /// Algorithm 5's decision: should the remaining roots use the
    /// edge-parallel strategy, given the sampled max BFS depths?
    pub fn choose_edge_parallel(&self, n: usize, sampled_depths: &mut [u32]) -> bool {
        if sampled_depths.is_empty() || n < 2 {
            return false;
        }
        sampled_depths.sort_unstable();
        let median = sampled_depths[sampled_depths.len() / 2];
        (median as f64) < self.gamma * (n as f64).log2()
    }
}

/// Pricing for the sampling method's post-decision phase: mostly
/// edge-parallel, falling back to work-efficient on small frontiers.
#[derive(Debug)]
pub struct SamplingPhaseModel {
    min_frontier: usize,
    forward_choices: Vec<Strategy>,
    trips: Vec<u32>,
    /// Iterations priced work-efficiently.
    pub work_efficient_iterations: u64,
    /// Iterations priced edge-parallel.
    pub edge_parallel_iterations: u64,
}

impl SamplingPhaseModel {
    /// Model for the remaining-roots phase after an edge-parallel
    /// decision.
    pub fn new(min_frontier: usize) -> Self {
        SamplingPhaseModel {
            min_frontier,
            forward_choices: Vec::new(),
            trips: Vec::new(),
            work_efficient_iterations: 0,
            edge_parallel_iterations: 0,
        }
    }
}

impl CostModel for SamplingPhaseModel {
    fn begin_root(&mut self, _g: &Csr, _root: VertexId) {
        self.forward_choices.clear();
    }

    fn price(&mut self, g: &Csr, device: &DeviceConfig, level: &LevelInfo<'_>) -> PricedIteration {
        let strategy = match level.phase {
            Phase::Forward => {
                let s = if level.frontier.len() >= self.min_frontier {
                    Strategy::EdgeParallel
                } else {
                    Strategy::WorkEfficient
                };
                self.forward_choices.push(s);
                s
            }
            Phase::Backward => self
                .forward_choices
                .get(level.depth as usize)
                .copied()
                .unwrap_or(Strategy::WorkEfficient),
        };
        match strategy {
            Strategy::WorkEfficient => {
                self.work_efficient_iterations += 1;
                cost::work_efficient_level(g, device, level, &mut self.trips)
            }
            Strategy::EdgeParallel => {
                self.edge_parallel_iterations += 1;
                cost::edge_parallel_level(g, device, level)
            }
        }
    }
}

// ---- Shardability ----------------------------------------------------
//
// Every model's pricing is root-pure: `begin_root` resets all
// per-root state (strategy, forward_choices), `trips` is cleared at
// the top of each pricing call, and the remaining fields are either
// fixed parameters or additive statistics. A fork therefore prices
// any root exactly as the prototype would, and merging is a plain sum
// of the iteration counters.

impl ShardableCostModel for WorkEfficientModel {
    fn fork(&self) -> Self {
        WorkEfficientModel::with_config(self.config)
    }
}

impl ShardableCostModel for EdgeParallelModel {
    fn fork(&self) -> Self {
        EdgeParallelModel
    }
}

impl ShardableCostModel for VertexParallelModel {
    fn fork(&self) -> Self {
        VertexParallelModel::default()
    }
}

impl ShardableCostModel for GpuFanModel {
    fn fork(&self) -> Self {
        GpuFanModel
    }
}

impl ShardableCostModel for HybridModel {
    fn fork(&self) -> Self {
        HybridModel::new(self.params)
    }

    fn merge_worker(&mut self, worker: Self) {
        self.work_efficient_iterations += worker.work_efficient_iterations;
        self.edge_parallel_iterations += worker.edge_parallel_iterations;
    }
}

impl ShardableCostModel for SamplingPhaseModel {
    fn fork(&self) -> Self {
        SamplingPhaseModel::new(self.min_frontier)
    }

    fn merge_worker(&mut self, worker: Self) {
        self.work_efficient_iterations += worker.work_efficient_iterations;
        self.edge_parallel_iterations += worker.edge_parallel_iterations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{process_root, SearchWorkspace};
    use bc_graph::gen;

    fn drive(g: &Csr, model: &mut dyn CostModel) {
        let device = DeviceConfig::gtx_titan();
        let mut ws = SearchWorkspace::new(g.num_vertices());
        let mut bc = vec![0.0; g.num_vertices()];
        for root in g.vertices().take(8) {
            process_root(g, root, &device, &mut ws, model, &mut bc);
        }
    }

    #[test]
    fn hybrid_stays_work_efficient_on_high_diameter() {
        // A long path: frontiers of size 1, never crossing α.
        let g = gen::path(4000);
        let mut m = HybridModel::new(HybridParams::default());
        drive(&g, &mut m);
        assert_eq!(m.edge_parallel_iterations, 0);
        assert!(m.work_efficient_iterations > 0);
    }

    #[test]
    fn hybrid_switches_on_explosive_frontiers() {
        // A big star: frontier jumps 1 -> n-1, crossing α = 768 and
        // β = 512 immediately.
        let g = gen::star(5000);
        let mut m = HybridModel::new(HybridParams::default());
        drive(&g, &mut m);
        assert!(
            m.edge_parallel_iterations > 0,
            "star frontier explosion must trigger edge-parallel"
        );
    }

    #[test]
    fn hybrid_alpha_sensitivity() {
        // With a huge α the hybrid never reconsiders.
        let g = gen::star(5000);
        let mut m = HybridModel::new(HybridParams {
            alpha: u64::MAX,
            beta: 512,
        });
        drive(&g, &mut m);
        assert_eq!(m.edge_parallel_iterations, 0);
    }

    #[test]
    fn sampling_decision_median_logic() {
        let p = SamplingParams::default();
        // n = 1024: threshold = 4 * 10 = 40.
        let mut shallow = vec![6u32; 100];
        assert!(p.choose_edge_parallel(1024, &mut shallow));
        let mut deep = vec![500u32; 100];
        assert!(!p.choose_edge_parallel(1024, &mut deep));
        // Median robust to outliers: a few deep samples don't flip it.
        let mut mixed = vec![6u32; 99];
        mixed.extend([2000u32; 40]);
        assert!(p.choose_edge_parallel(1024, &mut mixed));
        let mut empty: Vec<u32> = vec![];
        assert!(!p.choose_edge_parallel(1024, &mut empty));
    }

    #[test]
    fn sampling_phase_model_falls_back_on_small_frontiers() {
        let g = gen::star(5000);
        let mut m = SamplingPhaseModel::new(512);
        drive(&g, &mut m);
        // Root expansion (frontier = 1) is work-efficient; the leaf
        // level (frontier = 4999) is edge-parallel.
        assert!(m.work_efficient_iterations > 0);
        assert!(m.edge_parallel_iterations > 0);
    }

    #[test]
    fn backward_replays_forward_choices() {
        let g = gen::star(5000);
        let device = DeviceConfig::gtx_titan();
        let mut ws = SearchWorkspace::new(g.num_vertices());
        let mut bc = vec![0.0; g.num_vertices()];
        let mut m = HybridModel::new(HybridParams::default());
        process_root(&g, 0, &device, &mut ws, &mut m, &mut bc);
        // Forward: depth 0 (WE, then switch). Backward replays
        // the same per-depth choices, so counts stay consistent:
        // every EP-priced backward level had an EP-priced forward
        // counterpart.
        assert!(m.edge_parallel_iterations <= 2 * m.forward_choices.len() as u64);
    }
}
