//! [`CostModel`] implementations for each parallelization strategy,
//! including the per-iteration strategy switching of the hybrid
//! (Algorithm 4) and sampling (Algorithm 5) methods.

use crate::engine::{CostModel, FrontierSnapshot, LevelInfo, Phase, PricedIteration, Traversal};
use crate::methods::cost;
use crate::parallel::ShardableCostModel;
use bc_gpusim::DeviceConfig;
use bc_graph::{Csr, VertexId};
use serde::{Deserialize, Serialize};

/// The base strategies the hybrid methods alternate between.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Queue-based frontier traversal (this paper).
    WorkEfficient,
    /// All-edges inspection (Jia et al.).
    EdgeParallel,
    /// Bottom-up bitmap traversal (Beamer-style pull), available to
    /// the hybrid selector on saturated forward levels.
    BottomUp,
}

/// Which traversal directions a run may use (the CLI's
/// `--traversal {push,pull,auto}`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraversalMode {
    /// Always top-down — the paper's queue kernels, and the mode
    /// every pre-existing method is equivalent to.
    #[default]
    Push,
    /// Force every forward level bottom-up (on symmetric graphs) —
    /// the ablation endpoint that shows why switching matters.
    Pull,
    /// Beamer-style direction optimization: switch to pull when the
    /// frontier saturates, back to push when it drains.
    Auto,
}

impl TraversalMode {
    /// CLI/report name.
    pub fn name(self) -> &'static str {
        match self {
            TraversalMode::Push => "push",
            TraversalMode::Pull => "pull",
            TraversalMode::Auto => "auto",
        }
    }
}

/// Parameters of the Beamer-style direction switch, driven by the
/// engine's per-level [`FrontierSnapshot`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DirectionParams {
    /// Push→pull when `frontier_edges × alpha` exceeds the
    /// unexplored directed edges (Beamer's growing-frontier test;
    /// his CPU-tuned default is 14).
    pub alpha: u64,
    /// Pull→push when the vertex frontier shrinks below `n / beta`
    /// (Beamer's shrinking-frontier test; default 24).
    pub beta: u64,
}

impl Default for DirectionParams {
    fn default() -> Self {
        DirectionParams {
            alpha: 14,
            beta: 24,
        }
    }
}

impl DirectionParams {
    /// One step of the sticky Beamer automaton: given the direction
    /// the previous level ran in and the upcoming level's frontier
    /// snapshot, pick the next direction. Pure in its inputs, so the
    /// per-root schedule is identical at every thread count.
    pub fn next(&self, current: Traversal, g: &Csr, f: &FrontierSnapshot) -> Traversal {
        let n = g.num_vertices() as u64;
        let unexplored = (g.num_directed_edges() as u64).saturating_sub(f.visited_edges);
        match current {
            Traversal::Push => {
                // The edge test alone also fires on the *tail* of a
                // deep search (unexplored → 0 with a thin frontier);
                // requiring the frontier to clear the pull→push exit
                // threshold keeps the automaton hysteresis-consistent
                // and pulls only on genuinely saturated levels.
                let saturated = f.frontier_edges.saturating_mul(self.alpha) > unexplored;
                let wide = f.frontier_vertices.saturating_mul(self.beta) >= n;
                if f.depth > 0 && saturated && wide {
                    Traversal::Pull
                } else {
                    Traversal::Push
                }
            }
            Traversal::Pull => {
                if f.frontier_vertices.saturating_mul(self.beta) < n {
                    Traversal::Push
                } else {
                    Traversal::Pull
                }
            }
        }
    }
}

/// Direction-optimizing pricing: work-efficient push kernels with
/// bottom-up pull levels wherever the Beamer automaton (or a forced
/// [`TraversalMode`]) engages them. With [`TraversalMode::Push`]
/// this prices identically to [`WorkEfficientModel`] at its default
/// configuration.
#[derive(Debug)]
pub struct DirectionOptimizingModel {
    mode: TraversalMode,
    params: DirectionParams,
    current: Traversal,
    trips: Vec<u32>,
    /// Forward levels priced top-down.
    pub push_iterations: u64,
    /// Forward levels priced bottom-up.
    pub pull_iterations: u64,
}

impl DirectionOptimizingModel {
    /// A model with default Beamer parameters.
    pub fn new(mode: TraversalMode) -> Self {
        Self::with_params(mode, DirectionParams::default())
    }

    /// A model with explicit α/β.
    pub fn with_params(mode: TraversalMode, params: DirectionParams) -> Self {
        DirectionOptimizingModel {
            mode,
            params,
            current: Traversal::Push,
            trips: Vec::new(),
            push_iterations: 0,
            pull_iterations: 0,
        }
    }

    /// The traversal mode this model enforces.
    pub fn mode(&self) -> TraversalMode {
        self.mode
    }
}

impl CostModel for DirectionOptimizingModel {
    fn begin_root(&mut self, _g: &Csr, _root: VertexId) {
        // Every search opens pushing: the root-only frontier is the
        // worst possible pull input.
        self.current = Traversal::Push;
    }

    fn choose_traversal(
        &mut self,
        g: &Csr,
        _device: &DeviceConfig,
        frontier: &FrontierSnapshot,
    ) -> Traversal {
        self.current = match self.mode {
            TraversalMode::Push => Traversal::Push,
            TraversalMode::Pull => Traversal::Pull,
            TraversalMode::Auto => self.params.next(self.current, g, frontier),
        };
        self.current
    }

    fn price(&mut self, g: &Csr, device: &DeviceConfig, level: &LevelInfo<'_>) -> PricedIteration {
        if level.phase == Phase::Forward && level.traversal == Traversal::Pull {
            self.pull_iterations += 1;
            return cost::bottom_up_level(g, device, level);
        }
        if level.phase == Phase::Forward {
            self.push_iterations += 1;
        }
        // Backward levels always run the unchanged successor sweep.
        cost::work_efficient_level(g, device, level, &mut self.trips)
    }
}

/// Work-efficient pricing for every iteration.
#[derive(Debug, Default)]
pub struct WorkEfficientModel {
    trips: Vec<u32>,
    config: cost::WorkEfficientConfig,
}

impl WorkEfficientModel {
    /// A model with non-default design-variant knobs (see
    /// [`cost::WorkEfficientConfig`]) — used by the §IV-A ablations.
    pub fn with_config(config: cost::WorkEfficientConfig) -> Self {
        WorkEfficientModel {
            trips: Vec::new(),
            config,
        }
    }
}

impl CostModel for WorkEfficientModel {
    fn price(&mut self, g: &Csr, device: &DeviceConfig, level: &LevelInfo<'_>) -> PricedIteration {
        cost::work_efficient_level_cfg(g, device, level, &mut self.trips, self.config)
    }
}

/// Edge-parallel pricing for every iteration.
#[derive(Debug, Default)]
pub struct EdgeParallelModel;

impl CostModel for EdgeParallelModel {
    fn price(&mut self, g: &Csr, device: &DeviceConfig, level: &LevelInfo<'_>) -> PricedIteration {
        cost::edge_parallel_level(g, device, level)
    }
}

/// Vertex-parallel pricing for every iteration.
#[derive(Debug, Default)]
pub struct VertexParallelModel {
    scratch: cost::VertexParallelScratch,
}

impl CostModel for VertexParallelModel {
    fn price(&mut self, g: &Csr, device: &DeviceConfig, level: &LevelInfo<'_>) -> PricedIteration {
        cost::vertex_parallel_level(g, device, level, &mut self.scratch)
    }
}

/// GPU-FAN pricing: fine-grained edge-parallel with device-wide
/// synchronization each iteration.
#[derive(Debug, Default)]
pub struct GpuFanModel;

impl CostModel for GpuFanModel {
    fn price(&mut self, g: &Csr, device: &DeviceConfig, level: &LevelInfo<'_>) -> PricedIteration {
        cost::gpu_fan_level(g, device, level)
    }
}

/// Parameters of the hybrid method (Algorithm 4). The paper found
/// α = 768 and β = 512 best across its inputs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HybridParams {
    /// Frontier-change threshold that triggers strategy
    /// reconsideration.
    pub alpha: u64,
    /// Next-frontier size above which the edge-parallel method is
    /// chosen.
    pub beta: u64,
}

impl Default for HybridParams {
    fn default() -> Self {
        HybridParams {
            alpha: 768,
            beta: 512,
        }
    }
}

impl HybridParams {
    /// Algorithm 4's per-level reconsideration, as a pure function of
    /// one level's observable frontier numbers: with the frontier
    /// changing by `q_change` (`||Q_next| - |Q_curr||`) and
    /// `discovered` vertices entering `Q_next`, returns the strategy
    /// the switch selects for *subsequent* levels, or `None` when the
    /// change stays within α and the current strategy persists.
    ///
    /// This is the same predicate [`HybridModel`] applies after
    /// pricing each forward level, exposed so the recorded metrics
    /// stream (which carries exactly `q_curr`/`q_next`) can be
    /// audited against the paper's claimed switch points.
    pub fn switch_decision(&self, q_change: u64, discovered: u64) -> Option<Strategy> {
        if q_change > self.alpha {
            Some(if discovered > self.beta {
                Strategy::EdgeParallel
            } else {
                Strategy::WorkEfficient
            })
        } else {
            None
        }
    }
}

/// Hybrid pricing: starts work-efficient, reconsiders whenever the
/// frontier size changes by more than α, switching to edge-parallel
/// when the next frontier exceeds β. With a non-push
/// [`TraversalMode`] the Beamer automaton adds bottom-up as a third
/// strategy: a forward level the engine runs bottom-up is priced as
/// the pull kernel regardless of the push-side α/β state, and its
/// backward counterpart still runs the unchanged successor sweep.
#[derive(Debug)]
pub struct HybridModel {
    params: HybridParams,
    traversal: TraversalMode,
    direction: DirectionParams,
    current_traversal: Traversal,
    strategy: Strategy,
    /// Strategy used at each forward depth, replayed by the backward
    /// sweep (the accumulation processes the same levels).
    forward_choices: Vec<Strategy>,
    trips: Vec<u32>,
    /// How many iterations ran under each strategy (for reports and
    /// tests).
    pub work_efficient_iterations: u64,
    /// See [`HybridModel::work_efficient_iterations`].
    pub edge_parallel_iterations: u64,
    /// Forward levels priced as the bottom-up pull kernel.
    pub bottom_up_iterations: u64,
}

impl HybridModel {
    /// A hybrid model with the given α/β (push-only, the paper's
    /// Algorithm 4).
    pub fn new(params: HybridParams) -> Self {
        HybridModel {
            params,
            traversal: TraversalMode::Push,
            direction: DirectionParams::default(),
            current_traversal: Traversal::Push,
            strategy: Strategy::WorkEfficient,
            forward_choices: Vec::new(),
            trips: Vec::new(),
            work_efficient_iterations: 0,
            edge_parallel_iterations: 0,
            bottom_up_iterations: 0,
        }
    }

    /// Enable a traversal mode (builder style).
    pub fn with_traversal(mut self, traversal: TraversalMode) -> Self {
        self.traversal = traversal;
        self
    }

    fn price_with(
        &mut self,
        strategy: Strategy,
        g: &Csr,
        device: &DeviceConfig,
        level: &LevelInfo<'_>,
    ) -> PricedIteration {
        match strategy {
            Strategy::WorkEfficient => {
                self.work_efficient_iterations += 1;
                cost::work_efficient_level(g, device, level, &mut self.trips)
            }
            Strategy::EdgeParallel => {
                self.edge_parallel_iterations += 1;
                cost::edge_parallel_level(g, device, level)
            }
            Strategy::BottomUp => match level.phase {
                Phase::Forward => {
                    self.bottom_up_iterations += 1;
                    cost::bottom_up_level(g, device, level)
                }
                // The backward sweep of a bottom-up depth is the
                // same successor sweep every other depth runs.
                Phase::Backward => {
                    self.work_efficient_iterations += 1;
                    cost::work_efficient_level(g, device, level, &mut self.trips)
                }
            },
        }
    }
}

impl CostModel for HybridModel {
    fn begin_root(&mut self, _g: &Csr, _root: VertexId) {
        // Each search starts work-efficient: the initial frontier is
        // just the root, and a wrong edge-parallel guess is the
        // costlier mistake (§IV-B).
        self.strategy = Strategy::WorkEfficient;
        self.current_traversal = Traversal::Push;
        self.forward_choices.clear();
    }

    fn choose_traversal(
        &mut self,
        g: &Csr,
        _device: &DeviceConfig,
        frontier: &FrontierSnapshot,
    ) -> Traversal {
        self.current_traversal = match self.traversal {
            TraversalMode::Push => Traversal::Push,
            TraversalMode::Pull => Traversal::Pull,
            TraversalMode::Auto => self.direction.next(self.current_traversal, g, frontier),
        };
        self.current_traversal
    }

    fn price(&mut self, g: &Csr, device: &DeviceConfig, level: &LevelInfo<'_>) -> PricedIteration {
        match level.phase {
            Phase::Forward => {
                // A bottom-up level overrides the push-side strategy
                // choice; the α/β automaton below still advances so
                // the right push kernel resumes when pull disengages.
                let strategy = if level.traversal == Traversal::Pull {
                    Strategy::BottomUp
                } else {
                    self.strategy
                };
                self.forward_choices.push(strategy);
                let priced = self.price_with(strategy, g, device, level);
                // Algorithm 4: reconsider only when the frontier
                // changes substantially.
                let q_curr = level.frontier.len() as u64;
                let q_change = level.discovered.abs_diff(q_curr);
                if let Some(next) = self.params.switch_decision(q_change, level.discovered) {
                    self.strategy = next;
                }
                priced
            }
            Phase::Backward => {
                let strategy = self
                    .forward_choices
                    .get(level.depth as usize)
                    .copied()
                    .unwrap_or(Strategy::WorkEfficient);
                self.price_with(strategy, g, device, level)
            }
        }
    }
}

/// Parameters of the sampling method (Algorithm 5).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SamplingParams {
    /// Roots processed work-efficiently to estimate the BFS depth
    /// distribution.
    pub n_samps: usize,
    /// Edge-parallel is chosen when the median max-depth is below
    /// `gamma * log2(n)`.
    pub gamma: f64,
    /// Even under the edge-parallel decision, iterations with a
    /// frontier smaller than this fall back to work-efficient
    /// ("designed to scale with the architecture").
    pub min_frontier: usize,
}

impl Default for SamplingParams {
    fn default() -> Self {
        SamplingParams {
            n_samps: 512,
            gamma: 4.0,
            min_frontier: 512,
        }
    }
}

impl SamplingParams {
    /// Algorithm 5's decision: should the remaining roots use the
    /// edge-parallel strategy, given the sampled max BFS depths?
    pub fn choose_edge_parallel(&self, n: usize, sampled_depths: &mut [u32]) -> bool {
        if sampled_depths.is_empty() || n < 2 {
            return false;
        }
        sampled_depths.sort_unstable();
        let median = sampled_depths[sampled_depths.len() / 2];
        (median as f64) < self.gamma * (n as f64).log2()
    }
}

/// Pricing for the sampling method's post-decision phase: mostly
/// edge-parallel, falling back to work-efficient on small frontiers.
#[derive(Debug)]
pub struct SamplingPhaseModel {
    min_frontier: usize,
    forward_choices: Vec<Strategy>,
    trips: Vec<u32>,
    /// Iterations priced work-efficiently.
    pub work_efficient_iterations: u64,
    /// Iterations priced edge-parallel.
    pub edge_parallel_iterations: u64,
}

impl SamplingPhaseModel {
    /// Model for the remaining-roots phase after an edge-parallel
    /// decision.
    pub fn new(min_frontier: usize) -> Self {
        SamplingPhaseModel {
            min_frontier,
            forward_choices: Vec::new(),
            trips: Vec::new(),
            work_efficient_iterations: 0,
            edge_parallel_iterations: 0,
        }
    }
}

impl CostModel for SamplingPhaseModel {
    fn begin_root(&mut self, _g: &Csr, _root: VertexId) {
        self.forward_choices.clear();
    }

    fn price(&mut self, g: &Csr, device: &DeviceConfig, level: &LevelInfo<'_>) -> PricedIteration {
        let strategy = match level.phase {
            Phase::Forward => {
                let s = if level.frontier.len() >= self.min_frontier {
                    Strategy::EdgeParallel
                } else {
                    Strategy::WorkEfficient
                };
                self.forward_choices.push(s);
                s
            }
            Phase::Backward => self
                .forward_choices
                .get(level.depth as usize)
                .copied()
                .unwrap_or(Strategy::WorkEfficient),
        };
        match strategy {
            // The sampling selector only assigns the two push
            // strategies; BottomUp folds into work-efficient so the
            // match stays total if that ever changes.
            Strategy::WorkEfficient | Strategy::BottomUp => {
                self.work_efficient_iterations += 1;
                cost::work_efficient_level(g, device, level, &mut self.trips)
            }
            Strategy::EdgeParallel => {
                self.edge_parallel_iterations += 1;
                cost::edge_parallel_level(g, device, level)
            }
        }
    }
}

// ---- Shardability ----------------------------------------------------
//
// Every model's pricing is root-pure: `begin_root` resets all
// per-root state (strategy, forward_choices), `trips` is cleared at
// the top of each pricing call, and the remaining fields are either
// fixed parameters or additive statistics. A fork therefore prices
// any root exactly as the prototype would, and merging is a plain sum
// of the iteration counters.

impl ShardableCostModel for WorkEfficientModel {
    fn fork(&self) -> Self {
        WorkEfficientModel::with_config(self.config)
    }
}

impl ShardableCostModel for EdgeParallelModel {
    fn fork(&self) -> Self {
        EdgeParallelModel
    }
}

impl ShardableCostModel for VertexParallelModel {
    fn fork(&self) -> Self {
        VertexParallelModel::default()
    }
}

impl ShardableCostModel for GpuFanModel {
    fn fork(&self) -> Self {
        GpuFanModel
    }
}

impl ShardableCostModel for HybridModel {
    fn fork(&self) -> Self {
        HybridModel::new(self.params).with_traversal(self.traversal)
    }

    fn merge_worker(&mut self, worker: Self) {
        self.work_efficient_iterations += worker.work_efficient_iterations;
        self.edge_parallel_iterations += worker.edge_parallel_iterations;
        self.bottom_up_iterations += worker.bottom_up_iterations;
    }
}

impl ShardableCostModel for DirectionOptimizingModel {
    fn fork(&self) -> Self {
        DirectionOptimizingModel::with_params(self.mode, self.params)
    }

    fn merge_worker(&mut self, worker: Self) {
        self.push_iterations += worker.push_iterations;
        self.pull_iterations += worker.pull_iterations;
    }
}

impl ShardableCostModel for SamplingPhaseModel {
    fn fork(&self) -> Self {
        SamplingPhaseModel::new(self.min_frontier)
    }

    fn merge_worker(&mut self, worker: Self) {
        self.work_efficient_iterations += worker.work_efficient_iterations;
        self.edge_parallel_iterations += worker.edge_parallel_iterations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{process_root, SearchWorkspace};
    use bc_graph::gen;

    fn drive(g: &Csr, model: &mut dyn CostModel) {
        let device = DeviceConfig::gtx_titan();
        let mut ws = SearchWorkspace::new(g.num_vertices());
        let mut bc = vec![0.0; g.num_vertices()];
        for root in g.vertices().take(8) {
            process_root(g, root, &device, &mut ws, model, &mut bc);
        }
    }

    #[test]
    fn hybrid_stays_work_efficient_on_high_diameter() {
        // A long path: frontiers of size 1, never crossing α.
        let g = gen::path(4000);
        let mut m = HybridModel::new(HybridParams::default());
        drive(&g, &mut m);
        assert_eq!(m.edge_parallel_iterations, 0);
        assert!(m.work_efficient_iterations > 0);
    }

    #[test]
    fn hybrid_switches_on_explosive_frontiers() {
        // A big star: frontier jumps 1 -> n-1, crossing α = 768 and
        // β = 512 immediately.
        let g = gen::star(5000);
        let mut m = HybridModel::new(HybridParams::default());
        drive(&g, &mut m);
        assert!(
            m.edge_parallel_iterations > 0,
            "star frontier explosion must trigger edge-parallel"
        );
    }

    #[test]
    fn hybrid_alpha_sensitivity() {
        // With a huge α the hybrid never reconsiders.
        let g = gen::star(5000);
        let mut m = HybridModel::new(HybridParams {
            alpha: u64::MAX,
            beta: 512,
        });
        drive(&g, &mut m);
        assert_eq!(m.edge_parallel_iterations, 0);
    }

    #[test]
    fn sampling_decision_median_logic() {
        let p = SamplingParams::default();
        // n = 1024: threshold = 4 * 10 = 40.
        let mut shallow = vec![6u32; 100];
        assert!(p.choose_edge_parallel(1024, &mut shallow));
        let mut deep = vec![500u32; 100];
        assert!(!p.choose_edge_parallel(1024, &mut deep));
        // Median robust to outliers: a few deep samples don't flip it.
        let mut mixed = vec![6u32; 99];
        mixed.extend([2000u32; 40]);
        assert!(p.choose_edge_parallel(1024, &mut mixed));
        let mut empty: Vec<u32> = vec![];
        assert!(!p.choose_edge_parallel(1024, &mut empty));
    }

    #[test]
    fn sampling_phase_model_falls_back_on_small_frontiers() {
        let g = gen::star(5000);
        let mut m = SamplingPhaseModel::new(512);
        drive(&g, &mut m);
        // Root expansion (frontier = 1) is work-efficient; the leaf
        // level (frontier = 4999) is edge-parallel.
        assert!(m.work_efficient_iterations > 0);
        assert!(m.edge_parallel_iterations > 0);
    }

    #[test]
    fn direction_model_pulls_on_saturated_frontiers_only() {
        let device = DeviceConfig::gtx_titan();
        // Small-world: one or two saturated levels → auto pulls.
        let sw = gen::watts_strogatz(4000, 8, 0.1, 11);
        // A long path never saturates → auto stays push.
        let road = gen::path(4000);
        let drive_out = |g: &Csr, mode: TraversalMode| {
            let mut m = DirectionOptimizingModel::new(mode);
            let mut ws = SearchWorkspace::new(g.num_vertices());
            let mut bc = vec![0.0; g.num_vertices()];
            for root in g.vertices().take(4) {
                process_root(g, root, &device, &mut ws, &mut m, &mut bc);
            }
            (m.push_iterations, m.pull_iterations)
        };
        let (_, sw_pull) = drive_out(&sw, TraversalMode::Auto);
        assert!(sw_pull > 0, "small-world saturation must engage pull");
        let (road_push, road_pull) = drive_out(&road, TraversalMode::Auto);
        assert_eq!(road_pull, 0, "thin frontiers must never pull");
        assert!(road_push > 0);
        let (forced_push, forced_pull) = drive_out(&sw, TraversalMode::Pull);
        assert_eq!(forced_push, 0, "forced pull mode never pushes");
        assert!(forced_pull > 0);
        let (p, no_pull) = drive_out(&sw, TraversalMode::Push);
        assert_eq!(no_pull, 0);
        assert!(p > 0);
    }

    #[test]
    fn direction_auto_prices_cheaper_than_push_on_saturated_graphs() {
        // The simulated-seconds claim behind the bench: on a graph
        // whose push working set spills L2, auto beats push.
        let g = gen::watts_strogatz(60_000, 10, 0.1, 3);
        let device = DeviceConfig::gtx_titan();
        let seconds = |mode: TraversalMode| {
            let mut m = DirectionOptimizingModel::new(mode);
            let mut ws = SearchWorkspace::new(g.num_vertices());
            let mut bc = vec![0.0; g.num_vertices()];
            let mut total = 0.0;
            for root in g.vertices().take(2) {
                total += process_root(&g, root, &device, &mut ws, &mut m, &mut bc)
                    .counters
                    .seconds;
            }
            total
        };
        let push = seconds(TraversalMode::Push);
        let auto = seconds(TraversalMode::Auto);
        assert!(auto < push, "auto {auto} must beat push {push}");
    }

    #[test]
    fn hybrid_engages_bottom_up_in_auto_mode_only() {
        let g = gen::watts_strogatz(4000, 8, 0.1, 11);
        let mut push_only = HybridModel::new(HybridParams::default());
        drive(&g, &mut push_only);
        assert_eq!(push_only.bottom_up_iterations, 0);
        let mut auto =
            HybridModel::new(HybridParams::default()).with_traversal(TraversalMode::Auto);
        drive(&g, &mut auto);
        assert!(
            auto.bottom_up_iterations > 0,
            "hybrid auto must use the third strategy on saturation"
        );
    }

    #[test]
    fn beamer_automaton_is_sticky_and_pure() {
        let g = gen::star(100);
        let p = DirectionParams::default();
        let snap = |depth, fv, fe, ve| FrontierSnapshot {
            depth,
            frontier_vertices: fv,
            frontier_edges: fe,
            visited_vertices: fv,
            visited_edges: ve,
        };
        // Tiny frontier from push: stay push.
        assert_eq!(
            p.next(Traversal::Push, &g, &snap(1, 1, 2, 4)),
            Traversal::Push
        );
        // Saturated frontier: switch (99 directed edges unexplored
        // bound crossed by 90 × 14).
        assert_eq!(
            p.next(Traversal::Push, &g, &snap(1, 50, 90, 99)),
            Traversal::Pull
        );
        // Depth 0 never pulls regardless of size.
        assert_eq!(
            p.next(Traversal::Push, &g, &snap(0, 50, 90, 99)),
            Traversal::Push
        );
        // A thin frontier at the tail of a deep search trips the
        // edge test (unexplored ≈ 0) but must stay push.
        assert_eq!(
            p.next(Traversal::Push, &g, &snap(7, 1, 2, 197)),
            Traversal::Push
        );
        // From pull, a still-large frontier stays pull…
        assert_eq!(
            p.next(Traversal::Pull, &g, &snap(2, 50, 90, 150)),
            Traversal::Pull
        );
        // …and a drained one reverts (n = 100, 100/24 ≈ 4).
        assert_eq!(
            p.next(Traversal::Pull, &g, &snap(3, 2, 4, 190)),
            Traversal::Push
        );
    }

    #[test]
    fn backward_replays_forward_choices() {
        let g = gen::star(5000);
        let device = DeviceConfig::gtx_titan();
        let mut ws = SearchWorkspace::new(g.num_vertices());
        let mut bc = vec![0.0; g.num_vertices()];
        let mut m = HybridModel::new(HybridParams::default());
        process_root(&g, 0, &device, &mut ws, &mut m, &mut bc);
        // Forward: depth 0 (WE, then switch). Backward replays
        // the same per-depth choices, so counts stay consistent:
        // every EP-priced backward level had an EP-priced forward
        // counterpart.
        assert!(m.edge_parallel_iterations <= 2 * m.forward_choices.len() as u64);
    }
}
