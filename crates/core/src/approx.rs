//! Approximate betweenness centrality by source sampling.
//!
//! The paper focuses on the exact computation but notes its
//! "techniques can be trivially adjusted for approximation" (§V-A).
//! This module is that adjustment: process `k` sampled sources and
//! scale contributions by `n/k` (Bader et al.'s estimator), reusing
//! the same engine and methods.

use crate::solver::{BcOptions, BcRun, Method, RootSelection};
use bc_gpusim::SimError;
use bc_graph::{Csr, VertexId};

/// Source count the graceful-degradation ladder samples when it falls
/// back to approximation — the paper's fixed-512-sample convention.
pub const DEGRADED_SAMPLE_SOURCES: usize = 512;

/// Hoeffding-style additive error bound for `k`-source sampling of
/// normalized BC on an `n`-vertex graph: with probability at least
/// `1 - delta`, every vertex's estimate is within
/// `sqrt(ln(2n/delta) / (2k))` of its true normalized score. Each
/// sampled source contributes a value in `[0, 1]` to a normalized
/// score, so Hoeffding's inequality plus a union bound over the `n`
/// vertices gives the stated uniform deviation.
pub fn error_bound(n: usize, k: usize, delta: f64) -> f64 {
    if k == 0 || n == 0 {
        return f64::INFINITY;
    }
    ((2.0 * n as f64 / delta).ln() / (2.0 * k as f64)).sqrt()
}

/// Deterministically sample `k` distinct source vertices using a
/// multiplicative-hash shuffle of the id range (seeded).
pub fn sample_sources(n: usize, k: usize, seed: u64) -> Vec<VertexId> {
    let k = k.min(n);
    if k == 0 || n == 0 {
        return Vec::new();
    }
    // Walk the id range with a stride coprime to n, starting at a
    // seeded offset: a k-subset with good spread, no allocation of a
    // full permutation.
    let stride = coprime_stride(n as u64, seed);
    let start = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) % n as u64;
    (0..k as u64)
        .map(|i| ((start + i * stride) % n as u64) as u32)
        .collect()
}

fn coprime_stride(n: u64, seed: u64) -> u64 {
    if n <= 2 {
        return 1;
    }
    let mut s = (seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
        % (n - 1))
        + 1;
    while gcd(s, n) != 1 {
        s = s % (n - 1) + 1;
    }
    s
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Approximate BC: run `method` on `k` sampled sources and scale the
/// partial scores by `n/k`.
pub fn approximate_bc(
    g: &Csr,
    method: &Method,
    k: usize,
    seed: u64,
    opts: &BcOptions,
) -> Result<BcRun, SimError> {
    let n = g.num_vertices();
    let sources = sample_sources(n, k, seed);
    let count = sources.len();
    let opts = BcOptions {
        roots: RootSelection::Explicit(sources),
        ..opts.clone()
    };
    let mut run = method.run(g, &opts)?;
    if count > 0 {
        let scale = n as f64 / count as f64;
        for s in run.scores.iter_mut() {
            *s *= scale;
        }
    }
    Ok(run)
}

/// Mean relative error of approximate scores against exact ones,
/// over vertices whose exact score exceeds `floor` (tiny scores are
/// noise-dominated and excluded, as is standard in the BC
/// approximation literature).
pub fn mean_relative_error(exact: &[f64], approx: &[f64], floor: f64) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for (e, a) in exact.iter().zip(approx) {
        if *e > floor {
            sum += (e - a).abs() / e;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brandes;
    use bc_graph::gen;

    #[test]
    fn sampling_is_distinct_and_in_range() {
        let s = sample_sources(100, 20, 7);
        assert_eq!(s.len(), 20);
        let mut uniq = s.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 20, "samples must be distinct");
        assert!(s.iter().all(|&v| v < 100));
    }

    #[test]
    fn sampling_edge_cases() {
        assert!(sample_sources(0, 5, 1).is_empty());
        assert_eq!(sample_sources(3, 10, 1).len(), 3);
        assert_eq!(sample_sources(1, 1, 9), vec![0]);
    }

    #[test]
    fn full_sampling_is_exact() {
        let g = gen::grid(5, 5);
        let exact = brandes::betweenness(&g);
        let run = approximate_bc(&g, &Method::WorkEfficient, 25, 3, &BcOptions::default()).unwrap();
        for (e, a) in exact.iter().zip(&run.scores) {
            assert!((e - a).abs() < 1e-9, "k = n must be exact: {e} vs {a}");
        }
    }

    #[test]
    fn half_sampling_tracks_exact_scores() {
        let g = gen::watts_strogatz(400, 8, 0.1, 3);
        let exact = brandes::betweenness(&g);
        let run =
            approximate_bc(&g, &Method::WorkEfficient, 200, 1, &BcOptions::default()).unwrap();
        let err = mean_relative_error(&exact, &run.scores, 50.0);
        assert!(
            err < 0.5,
            "50% sampling should track big scores, err = {err}"
        );
    }

    #[test]
    fn error_bound_shrinks_with_samples_and_handles_edges() {
        assert!(error_bound(1000, 512, 0.1) < error_bound(1000, 64, 0.1));
        assert!(error_bound(1000, 512, 0.1) > 0.0);
        assert!(error_bound(0, 5, 0.1).is_infinite());
        assert!(error_bound(5, 0, 0.1).is_infinite());
    }

    #[test]
    fn relative_error_helper() {
        assert_eq!(mean_relative_error(&[10.0], &[9.0], 0.5), 0.1);
        assert_eq!(mean_relative_error(&[0.0], &[5.0], 0.5), 0.0);
    }
}
