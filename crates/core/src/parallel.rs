//! Parallel multi-root execution engine.
//!
//! Brandes' per-root searches are independent — the same
//! coarse-grained parallelism the paper exploits across thread blocks
//! (§III) and the cluster runner exploits across GPUs. This module
//! shards a resolved root set across host threads while keeping the
//! results **bitwise reproducible at any thread count**:
//!
//! * The shard partition depends only on the root count (never on the
//!   thread count or the schedule): at most [`MAX_SHARDS`] shards of
//!   equal size.
//! * Each worker owns one reused [`SearchWorkspace`] and accumulates
//!   each shard's δ contributions into a zeroed per-shard buffer, so
//!   within-shard floating-point association is fixed.
//! * Shard results are merged **in shard-index order** through an
//!   ordered merger, regardless of completion order.
//! * Cost models are forked per shard from a shared prototype
//!   ([`ShardableCostModel::fork`]) and merged back in shard order, so
//!   per-root *simulated* timing is identical to a sequential run
//!   while *wall-clock* time drops with cores.
//!
//! Which worker executes which shard — and when — is delegated to a
//! [`Schedule`] ([`crate::schedule`]): static blocks, guided shrinking
//! chunks behind an LPT-sorted cursor, or work-stealing deques seeded
//! by the [`bc_graph::stats::RootCostEstimator`]. Because the merge
//! order is fixed above, the schedule moves wall-clock only: one
//! thread produces exactly the same bytes as eight under any schedule.
//! The only tolerated difference is against the fully sequential
//! single-accumulator path (different f64 association across shards,
//! within 1e-9 on the equivalence tests).

use crate::brandes;
use crate::engine::{
    process_root_into, process_root_observed, CostModel, FreeModel, RootContext, RootOutcome,
    SearchWorkspace,
};
use crate::schedule::{Schedule, ShardQueue};
use bc_gpusim::trace::NullSink;
use bc_gpusim::{DeviceConfig, KernelCounters, SimError};
use bc_graph::{Csr, VertexId};
use bc_metrics::{MetricsRecorder, RootMetrics, WorkerMetrics};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Stringify a panic payload (the `Box<dyn Any>` a contained panic
/// hands back) for structured error reporting.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// First panic observed across the shard workers: `(shard, message)`.
/// Workers that panic record here and raise the abort flag instead of
/// unwinding through the thread scope.
struct PanicSlot {
    slot: Mutex<Option<(usize, String)>>,
    abort: AtomicBool,
}

impl PanicSlot {
    fn new() -> Self {
        PanicSlot {
            slot: Mutex::new(None),
            abort: AtomicBool::new(false),
        }
    }

    fn record(&self, shard: usize, payload: Box<dyn std::any::Any + Send>) {
        let msg = panic_message(payload);
        let mut slot = self.slot.lock().expect("panic slot poisoned");
        slot.get_or_insert((shard, msg));
        self.abort.store(true, Ordering::Release);
    }

    fn aborted(&self) -> bool {
        self.abort.load(Ordering::Acquire)
    }

    fn into_error(self) -> Option<SimError> {
        let slot = self.slot.into_inner().expect("panic slot poisoned");
        slot.map(|(worker, what)| SimError::WorkerPanic { worker, what })
    }
}

/// Upper bound on the number of shards a root set is split into.
///
/// Fixing the partition at `ceil(roots / ceil(roots / MAX_SHARDS))`
/// shards makes the floating-point merge order a function of the root
/// count alone — the precondition for bitwise reproducibility across
/// thread counts — while still exposing enough slack for dynamic load
/// balancing on any realistic host.
pub const MAX_SHARDS: usize = 64;

/// A cost model that can be forked to worker shards and merged back.
///
/// The contract mirrors the engine's pricing semantics: pricing must
/// be *root-pure* (a forked model prices any root exactly as the
/// prototype would — all the in-tree models reset per-root state in
/// [`CostModel::begin_root`] and keep only scratch buffers plus
/// additive statistics), and [`merge_worker`] folds a fork's
/// statistics back into the prototype. Merges are applied in
/// shard-index order.
///
/// [`merge_worker`]: ShardableCostModel::merge_worker
pub trait ShardableCostModel: CostModel + Send + Sync {
    /// A fresh model pricing roots identically to `self`, with its
    /// own scratch state.
    fn fork(&self) -> Self
    where
        Self: Sized;

    /// Fold a finished fork's statistics back into `self`. Models
    /// without accumulated statistics keep the default no-op.
    fn merge_worker(&mut self, _worker: Self)
    where
        Self: Sized,
    {
    }
}

impl ShardableCostModel for FreeModel {
    fn fork(&self) -> Self {
        FreeModel
    }
}

/// Resolve a thread-count request: explicit `requested` wins, then
/// the `RAYON_NUM_THREADS` environment variable (kept for continuity
/// with the former rayon-based CPU path), then the host's available
/// parallelism.
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(k) = v.parse::<usize>() {
            if k > 0 {
                return k;
            }
        }
    }
    std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1)
}

/// Roots per shard for a given root count (the last shard may be
/// short). Depends only on the root count — never on the thread count
/// or schedule, so the floating-point merge structure is fixed.
fn shard_size(num_roots: usize) -> usize {
    num_roots.div_ceil(MAX_SHARDS).max(1)
}

/// Per-shard cost estimates for LPT seeding, or `None` when the
/// schedule ignores them. A shard's cost is the sum of its roots'
/// [`bc_graph::stats::RootCostEstimator`] estimates.
fn shard_costs(
    g: &Csr,
    roots: &[VertexId],
    size: usize,
    shards: usize,
    schedule: Schedule,
) -> Option<Vec<f64>> {
    if schedule == Schedule::Static || shards <= 1 {
        return None;
    }
    let est = bc_graph::stats::RootCostEstimator::new(g, 2);
    Some(
        (0..shards)
            .map(|s| {
                let lo = s * size;
                let hi = (lo + size).min(roots.len());
                roots[lo..hi].iter().map(|&r| est.estimate(r)).sum()
            })
            .collect(),
    )
}

/// Aggregated outcome of a sharded multi-root run, with per-root
/// vectors in root order (exactly as a sequential loop would have
/// produced them).
#[derive(Clone, Debug)]
pub struct RootsRun {
    /// Summed δ contributions of all processed roots (no symmetry
    /// halving, no normalization — the caller's epilogue applies
    /// those).
    pub scores: Vec<f64>,
    /// Simulated block-seconds of each root, in root order.
    pub per_root_seconds: Vec<f64>,
    /// Max BFS depth of each root, in root order.
    pub max_depths: Vec<u32>,
    /// Work counters summed over all roots (shard-ordered merge).
    pub counters: KernelCounters,
}

/// What one shard hands to the ordered merger besides its score
/// accumulator.
struct ShardMeta<M> {
    first_root: usize,
    per_root_seconds: Vec<f64>,
    max_depths: Vec<u32>,
    counters: KernelCounters,
    model: M,
    /// Per-root metric records (empty on unmetered runs). Shards are
    /// contiguous root ranges drained in shard order, so appending
    /// these restores global root order.
    metrics: Vec<RootMetrics>,
}

/// Merges per-shard score accumulators into the final vector in
/// shard-index order, regardless of the order workers finish in, and
/// recycles drained buffers so the steady state allocates nothing.
struct OrderedMerger<Meta> {
    n: usize,
    state: Mutex<MergeInner<Meta>>,
}

struct MergeInner<Meta> {
    /// Next shard index the merge is waiting on.
    next: usize,
    /// Finished shards that arrived ahead of `next`.
    pending: BTreeMap<usize, (Vec<f64>, Meta)>,
    scores: Vec<f64>,
    /// Metas of drained shards, in shard order.
    metas: Vec<Meta>,
    /// Zeroed buffers ready for reuse.
    pool: Vec<Vec<f64>>,
}

impl<Meta> OrderedMerger<Meta> {
    fn new(n: usize) -> Self {
        OrderedMerger {
            n,
            state: Mutex::new(MergeInner {
                next: 0,
                pending: BTreeMap::new(),
                scores: vec![0.0; n],
                metas: Vec::new(),
                pool: Vec::new(),
            }),
        }
    }

    /// A zeroed accumulator for a worker starting up.
    fn take_buffer(&self) -> Vec<f64> {
        let recycled = self.state.lock().expect("merger poisoned").pool.pop();
        recycled.unwrap_or_else(|| vec![0.0; self.n])
    }

    /// Hand over a finished shard; drain every shard that is now
    /// contiguous with the merge frontier; hand back a zeroed buffer
    /// for the worker's next shard.
    fn deposit(&self, shard: usize, acc: Vec<f64>, meta: Meta) -> Vec<f64> {
        debug_assert_eq!(
            acc.len(),
            self.n,
            "shard {shard} accumulator has the wrong length"
        );
        // No finiteness check here: σ path counts are f64 and overflow
        // to ∞ on extreme-diameter meshes (δ then holds ∞/∞ = NaN), so
        // finite shards are a per-graph property, not a merger
        // invariant. `bc_verify::check_scores` flags overflow when the
        // caller opts into verification.
        let mut st = self.state.lock().expect("merger poisoned");
        debug_assert!(
            shard >= st.next,
            "shard {shard} deposited after it was already merged"
        );
        let displaced = st.pending.insert(shard, (acc, meta));
        debug_assert!(displaced.is_none(), "shard {shard} deposited twice");
        loop {
            let next = st.next;
            let Some((mut buf, meta)) = st.pending.remove(&next) else {
                break;
            };
            for (dst, src) in st.scores.iter_mut().zip(&buf) {
                *dst += *src;
            }
            st.metas.push(meta);
            buf.fill(0.0);
            st.pool.push(buf);
            st.next += 1;
        }
        st.pool.pop().unwrap_or_else(|| vec![0.0; self.n])
    }

    /// Return an unused buffer when a worker runs out of shards.
    fn recycle(&self, acc: Vec<f64>) {
        // Pool buffers are handed out as accumulators without
        // re-zeroing, so anything entering the pool must be pristine.
        debug_assert!(
            acc.iter().all(|&v| v == 0.0),
            "a dirty accumulator must be deposited, not recycled"
        );
        self.state.lock().expect("merger poisoned").pool.push(acc);
    }

    fn finish(self) -> (Vec<f64>, Vec<Meta>) {
        let inner = self.state.into_inner().expect("merger poisoned");
        assert!(
            inner.pending.is_empty(),
            "every shard must have been drained"
        );
        (inner.scores, inner.metas)
    }
}

/// Run every root of `roots` through the engine under forks of
/// `model`, sharded across `threads` host threads (0 = auto, see
/// [`effective_threads`]).
///
/// Scores, per-root vectors, and counters are bitwise identical at
/// any thread count; the fork's statistics are merged back into
/// `model` in shard order.
///
/// A panic inside a worker (a buggy cost model, a corrupted graph) is
/// contained: the remaining workers drain, and the first panic comes
/// back as [`SimError::WorkerPanic`] naming the shard index instead
/// of unwinding through the calling thread.
pub fn run_roots<M: ShardableCostModel>(
    g: &Csr,
    device: &DeviceConfig,
    roots: &[VertexId],
    threads: usize,
    model: &mut M,
) -> Result<RootsRun, SimError> {
    run_roots_scheduled(g, device, roots, threads, Schedule::Static, model)
}

/// [`run_roots`] under an explicit [`Schedule`]. Scores, per-root
/// vectors, and counters are bitwise identical across schedules and
/// thread counts — the schedule changes wall-clock only.
pub fn run_roots_scheduled<M: ShardableCostModel>(
    g: &Csr,
    device: &DeviceConfig,
    roots: &[VertexId],
    threads: usize,
    schedule: Schedule,
    model: &mut M,
) -> Result<RootsRun, SimError> {
    run_roots_inner::<M, false>(g, device, roots, threads, schedule, model).map(|(run, _, _)| run)
}

/// [`run_roots`] additionally collecting one [`RootMetrics`] record
/// per root (in global root order), via a per-shard
/// [`MetricsRecorder`] merged back through the same ordered merger as
/// the scores. The recorders only observe values the engine already
/// computed, so everything in the returned [`RootsRun`] is bitwise
/// identical to the unmetered call's.
pub fn run_roots_metered<M: ShardableCostModel>(
    g: &Csr,
    device: &DeviceConfig,
    roots: &[VertexId],
    threads: usize,
    model: &mut M,
) -> Result<(RootsRun, Vec<RootMetrics>), SimError> {
    run_roots_inner::<M, true>(g, device, roots, threads, Schedule::Static, model)
        .map(|(run, metrics, _)| (run, metrics))
}

/// [`run_roots_scheduled`] with metering: per-root records plus one
/// [`WorkerMetrics`] per worker thread (ordered by worker index)
/// describing what that worker claimed, stole, and waited for.
pub fn run_roots_scheduled_metered<M: ShardableCostModel>(
    g: &Csr,
    device: &DeviceConfig,
    roots: &[VertexId],
    threads: usize,
    schedule: Schedule,
    model: &mut M,
) -> Result<(RootsRun, Vec<RootMetrics>, Vec<WorkerMetrics>), SimError> {
    run_roots_inner::<M, true>(g, device, roots, threads, schedule, model)
}

fn run_roots_inner<M: ShardableCostModel, const METERED: bool>(
    g: &Csr,
    device: &DeviceConfig,
    roots: &[VertexId],
    threads: usize,
    schedule: Schedule,
    model: &mut M,
) -> Result<(RootsRun, Vec<RootMetrics>, Vec<WorkerMetrics>), SimError> {
    let n = g.num_vertices();
    let num_roots = roots.len();
    if num_roots == 0 {
        return Ok((
            RootsRun {
                scores: vec![0.0; n],
                per_root_seconds: Vec::new(),
                max_depths: Vec::new(),
                counters: KernelCounters::default(),
            },
            Vec::new(),
            Vec::new(),
        ));
    }
    let size = shard_size(num_roots);
    let shards = num_roots.div_ceil(size);
    let workers = effective_threads(threads).min(shards).max(1);

    let costs = shard_costs(g, roots, size, shards, schedule);
    let queue = ShardQueue::new(schedule, shards, workers, costs.as_deref());
    let merger: OrderedMerger<ShardMeta<M>> = OrderedMerger::new(n);
    let panics = PanicSlot::new();
    let worker_out: Mutex<Vec<WorkerMetrics>> = Mutex::new(Vec::new());
    let proto: &M = model;

    let worker = |worker_id: usize, merger: &OrderedMerger<ShardMeta<M>>| {
        let mut ws = SearchWorkspace::new(n);
        let mut out = RootOutcome::default();
        let mut acc = merger.take_buffer();
        let mut state = queue.worker_state(worker_id);
        // Busy/idle are accumulated as integer nanoseconds with
        // checked adds (u128 holds ~10^22 years of them) and only
        // converted to f64 seconds once at the end: repeated f64 `+=`
        // of tiny elapsed times loses precision as the sum grows, and
        // the utilization metrics divide these numbers.
        let mut busy_nanos = 0u128;
        let mut idle_nanos = 0u128;
        let mut roots_done = 0u64;
        loop {
            if panics.aborted() {
                // `acc` is clean here (a dirty one is only possible on
                // this worker's own panic path, which breaks out
                // without reaching the recycle below).
                break;
            }
            // Claims are timed only on the metered path: unmetered
            // runs pay zero clock reads.
            let claim_started = METERED.then(Instant::now);
            let claimed = queue.claim(&mut state);
            if let Some(t) = claim_started {
                idle_nanos = idle_nanos
                    .checked_add(t.elapsed().as_nanos())
                    .expect("idle nanos overflow u128");
            }
            let Some(shard) = claimed else {
                break;
            };
            let shard = shard as usize;
            let lo = shard * size;
            let hi = (lo + size).min(num_roots);
            let work_started = METERED.then(Instant::now);
            // Contain panics from the per-root engine / cost model:
            // `ws`, `out`, and `acc` may be mid-update when a panic
            // unwinds, but they are never touched again afterwards
            // (the worker stops), so AssertUnwindSafe is sound.
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                let mut m = proto.fork();
                let mut per_root_seconds = Vec::with_capacity(hi - lo);
                let mut max_depths = Vec::with_capacity(hi - lo);
                let mut counters = KernelCounters::default();
                let mut recorder = MetricsRecorder::default();
                for &r in &roots[lo..hi] {
                    let ctx = RootContext { g, root: r, device };
                    if METERED {
                        process_root_observed(
                            &ctx,
                            &mut ws,
                            &mut m,
                            &mut acc,
                            &mut out,
                            &mut NullSink,
                            &mut recorder,
                        );
                    } else {
                        process_root_into(&ctx, &mut ws, &mut m, &mut acc, &mut out);
                    }
                    per_root_seconds.push(out.counters.seconds);
                    max_depths.push(out.max_depth);
                    counters.merge(&out.counters);
                }
                ShardMeta {
                    first_root: lo,
                    per_root_seconds,
                    max_depths,
                    counters,
                    model: m,
                    metrics: recorder.roots,
                }
            }));
            match attempt {
                Ok(meta) => {
                    if let Some(t) = work_started {
                        busy_nanos = busy_nanos
                            .checked_add(t.elapsed().as_nanos())
                            .expect("busy nanos overflow u128");
                    }
                    roots_done += (hi - lo) as u64;
                    acc = merger.deposit(shard, acc, meta);
                }
                Err(payload) => {
                    panics.record(shard, payload);
                    // The accumulator holds partial contributions of
                    // the panicked shard — poisoned, do not recycle.
                    return;
                }
            }
        }
        merger.recycle(acc);
        if METERED {
            worker_out
                .lock()
                .expect("worker metrics poisoned")
                .push(WorkerMetrics {
                    worker: worker_id as u64,
                    phase: 0,
                    schedule: schedule.name().to_owned(),
                    phase_roots: num_roots as u64,
                    shard_size: size as u64,
                    shards: state.stats.shards,
                    roots_processed: roots_done,
                    steals: state.stats.steals,
                    failed_steal_attempts: state.stats.failed_steal_attempts,
                    max_queue_depth: state.stats.max_queue_depth,
                    busy_seconds: busy_nanos as f64 * 1e-9,
                    idle_seconds: idle_nanos as f64 * 1e-9,
                });
        }
    };

    if workers == 1 {
        worker(0, &merger);
    } else {
        std::thread::scope(|scope| {
            let worker = &worker;
            let merger = &merger;
            for id in 1..workers {
                scope.spawn(move || worker(id, merger));
            }
            worker(0, merger);
        });
    }

    if let Some(err) = panics.into_error() {
        return Err(err);
    }
    let (scores, metas) = merger.finish();
    let mut per_root_seconds = vec![0.0f64; num_roots];
    let mut max_depths = vec![0u32; num_roots];
    let mut counters = KernelCounters::default();
    let mut metrics = Vec::new();
    for meta in metas {
        let lo = meta.first_root;
        per_root_seconds[lo..lo + meta.per_root_seconds.len()]
            .copy_from_slice(&meta.per_root_seconds);
        max_depths[lo..lo + meta.max_depths.len()].copy_from_slice(&meta.max_depths);
        counters.merge(&meta.counters);
        model.merge_worker(meta.model);
        metrics.extend(meta.metrics);
    }
    let mut per_worker = worker_out.into_inner().expect("worker metrics poisoned");
    per_worker.sort_by_key(|w| w.worker);
    Ok((
        RootsRun {
            scores,
            per_root_seconds,
            max_depths,
            counters,
        },
        metrics,
        per_worker,
    ))
}

/// Exact CPU Brandes over an explicit root set, sharded across host
/// threads with the same deterministic merge (and symmetric halving,
/// matching [`brandes::betweenness_from_roots`]). Workers reuse one
/// [`brandes::BrandesWorkspace`] each — no per-root allocation.
///
/// Worker panics are contained like [`run_roots`]'s: the first one
/// comes back as [`SimError::WorkerPanic`] naming the shard index.
pub fn cpu_betweenness_from_roots(
    g: &Csr,
    roots: &[VertexId],
    threads: usize,
) -> Result<Vec<f64>, SimError> {
    cpu_betweenness_from_roots_scheduled(g, roots, threads, Schedule::Static)
}

/// [`cpu_betweenness_from_roots`] under an explicit [`Schedule`];
/// like the engine runner, the schedule moves wall-clock only — the
/// scores are bitwise identical across schedules and thread counts.
pub fn cpu_betweenness_from_roots_scheduled(
    g: &Csr,
    roots: &[VertexId],
    threads: usize,
    schedule: Schedule,
) -> Result<Vec<f64>, SimError> {
    let n = g.num_vertices();
    let num_roots = roots.len();
    if num_roots == 0 {
        return Ok(vec![0.0; n]);
    }
    let size = shard_size(num_roots);
    let shards = num_roots.div_ceil(size);
    let workers = effective_threads(threads).min(shards).max(1);

    let costs = shard_costs(g, roots, size, shards, schedule);
    let queue = ShardQueue::new(schedule, shards, workers, costs.as_deref());
    let merger: OrderedMerger<()> = OrderedMerger::new(n);
    let panics = PanicSlot::new();

    let worker = |worker_id: usize, merger: &OrderedMerger<()>| {
        let mut ws = brandes::BrandesWorkspace::new(n);
        let mut acc = merger.take_buffer();
        let mut state = queue.worker_state(worker_id);
        loop {
            if panics.aborted() {
                break;
            }
            let Some(shard) = queue.claim(&mut state) else {
                break;
            };
            let shard = shard as usize;
            let lo = shard * size;
            let hi = (lo + size).min(num_roots);
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                for &r in &roots[lo..hi] {
                    brandes::single_source_into(g, r, &mut ws);
                    brandes::accumulate_from_workspace(g, r, &mut ws, &mut acc);
                }
            }));
            match attempt {
                Ok(()) => acc = merger.deposit(shard, acc, ()),
                Err(payload) => {
                    panics.record(shard, payload);
                    return;
                }
            }
        }
        merger.recycle(acc);
    };

    if workers == 1 {
        worker(0, &merger);
    } else {
        std::thread::scope(|scope| {
            let worker = &worker;
            let merger = &merger;
            for id in 1..workers {
                scope.spawn(move || worker(id, merger));
            }
            worker(0, merger);
        });
    }

    if let Some(err) = panics.into_error() {
        return Err(err);
    }
    let (mut scores, _) = merger.finish();
    brandes::halve_if_symmetric(g, &mut scores);
    Ok(scores)
}

/// One root's dependency contribution, extracted from a zeroed
/// accumulator: exactly the addends [`run_roots_scheduled`] folds
/// into its shard accumulator for this root, plus the BFS level map
/// the serving layer's delta invalidation tests edge edits against.
#[derive(Clone, Debug, PartialEq)]
pub struct RootContribution {
    /// The root this contribution belongs to.
    pub root: VertexId,
    /// Simulated block-seconds of this root's search.
    pub seconds: f64,
    /// Deepest BFS level reached.
    pub max_depth: u32,
    /// Nonzero δ entries `(vertex, value)` in ascending vertex order.
    pub entries: Vec<(VertexId, f64)>,
    /// BFS depth of every vertex from this root (`u32::MAX` where
    /// unreachable) — the checkpointed frontier summary.
    pub levels: Vec<u32>,
}

impl RootContribution {
    /// Heap bytes this contribution occupies (the unit the serving
    /// cache prices against its device-memory budget).
    pub fn heap_bytes(&self) -> u64 {
        (self.entries.len() * std::mem::size_of::<(VertexId, f64)>()
            + self.levels.len() * std::mem::size_of::<u32>()) as u64
    }
}

/// Run every root of `roots` through the engine like
/// [`run_roots_scheduled`], but return each root's δ contribution
/// *individually* (with its BFS level map) instead of the shard-merged
/// sum. Results arrive in global root order at any thread count and
/// under any schedule, and
/// [`merge_contribution_entries`] folds them back into the exact
/// bitwise score vector `run_roots_scheduled` would have produced for
/// the same root sequence.
pub fn run_roots_contributions<M: ShardableCostModel>(
    g: &Csr,
    device: &DeviceConfig,
    roots: &[VertexId],
    threads: usize,
    schedule: Schedule,
    model: &mut M,
) -> Result<Vec<RootContribution>, SimError> {
    let n = g.num_vertices();
    let num_roots = roots.len();
    if num_roots == 0 {
        return Ok(Vec::new());
    }
    let size = shard_size(num_roots);
    let shards = num_roots.div_ceil(size);
    let workers = effective_threads(threads).min(shards).max(1);

    let costs = shard_costs(g, roots, size, shards, schedule);
    let queue = ShardQueue::new(schedule, shards, workers, costs.as_deref());
    let panics = PanicSlot::new();
    let done: Mutex<Vec<(usize, Vec<RootContribution>, M)>> = Mutex::new(Vec::new());
    let proto: &M = model;

    let worker = |worker_id: usize| {
        let mut ws = SearchWorkspace::new(n);
        let mut out = RootOutcome::default();
        let mut acc = vec![0.0f64; n];
        let mut state = queue.worker_state(worker_id);
        loop {
            if panics.aborted() {
                break;
            }
            let Some(shard) = queue.claim(&mut state) else {
                break;
            };
            let shard = shard as usize;
            let lo = shard * size;
            let hi = (lo + size).min(num_roots);
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                let mut m = proto.fork();
                let mut contribs = Vec::with_capacity(hi - lo);
                for &r in &roots[lo..hi] {
                    let ctx = RootContext { g, root: r, device };
                    process_root_into(&ctx, &mut ws, &mut m, &mut acc, &mut out);
                    // The engine deposits δ only at reached non-root
                    // stack vertices, so sweeping the stack both
                    // extracts every nonzero entry and restores the
                    // accumulator to pristine zero in O(reached).
                    let mut entries: Vec<(VertexId, f64)> = ws
                        .stack()
                        .iter()
                        .filter_map(|&v| {
                            let d = acc[v as usize];
                            acc[v as usize] = 0.0;
                            (d != 0.0).then_some((v, d))
                        })
                        .collect();
                    entries.sort_unstable_by_key(|&(v, _)| v);
                    contribs.push(RootContribution {
                        root: r,
                        seconds: out.counters.seconds,
                        max_depth: out.max_depth,
                        entries,
                        levels: ws.dist().to_vec(),
                    });
                }
                (contribs, m)
            }));
            match attempt {
                Ok((contribs, m)) => {
                    done.lock()
                        .expect("contribution slot poisoned")
                        .push((shard, contribs, m));
                }
                Err(payload) => {
                    panics.record(shard, payload);
                    return;
                }
            }
        }
    };

    if workers == 1 {
        worker(0);
    } else {
        std::thread::scope(|scope| {
            let worker = &worker;
            for id in 1..workers {
                scope.spawn(move || worker(id));
            }
            worker(0);
        });
    }

    if let Some(err) = panics.into_error() {
        return Err(err);
    }
    let mut finished = done.into_inner().expect("contribution slot poisoned");
    // Shards are contiguous root ranges: draining them in shard order
    // restores global root order, and merges the model forks in the
    // same order the score runners do.
    finished.sort_by_key(|&(shard, _, _)| shard);
    let mut contributions = Vec::with_capacity(num_roots);
    for (_, contribs, m) in finished {
        contributions.extend(contribs);
        model.merge_worker(m);
    }
    Ok(contributions)
}

/// Fold per-root contribution entry lists back into a score vector,
/// reproducing [`run_roots_scheduled`]'s floating-point association
/// over the same root sequence **bitwise**: the same shard partition
/// (a function of the root count alone), per-shard accumulation in
/// root order into a zeroed buffer, and a shard-index-order merge.
/// `parts[i]` must be root `i`'s nonzero entries (any source — a live
/// run or a cache).
pub fn merge_contribution_entries(n: usize, parts: &[&[(VertexId, f64)]]) -> Vec<f64> {
    let mut scores = vec![0.0f64; n];
    if parts.is_empty() {
        return scores;
    }
    let size = shard_size(parts.len());
    let mut shard_acc = vec![0.0f64; n];
    let mut touched: Vec<VertexId> = Vec::new();
    for shard in parts.chunks(size) {
        touched.clear();
        for entries in shard {
            for &(v, d) in *entries {
                debug_assert!(d != 0.0, "contribution entries store nonzero δ only");
                let slot = &mut shard_acc[v as usize];
                if *slot == 0.0 {
                    touched.push(v);
                }
                *slot += d;
            }
        }
        // δ contributions are nonnegative, so a touched slot never
        // returns to zero: `touched` holds each vertex once, and the
        // untouched slots would merge as `x += 0.0` no-ops.
        for &v in &touched {
            scores[v as usize] += shard_acc[v as usize];
            shard_acc[v as usize] = 0.0;
        }
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{LevelInfo, PricedIteration};
    use bc_graph::gen;

    fn titan() -> DeviceConfig {
        DeviceConfig::gtx_titan()
    }

    #[test]
    fn bitwise_identical_across_thread_counts() {
        let g = gen::watts_strogatz(600, 8, 0.1, 7);
        let roots: Vec<u32> = (0..600).collect();
        let runs: Vec<RootsRun> = [1usize, 2, 5, 8]
            .iter()
            .map(|&t| run_roots(&g, &titan(), &roots, t, &mut FreeModel).unwrap())
            .collect();
        for run in &runs[1..] {
            assert_eq!(run.scores, runs[0].scores, "scores must be bitwise equal");
            assert_eq!(run.per_root_seconds, runs[0].per_root_seconds);
            assert_eq!(run.max_depths, runs[0].max_depths);
            assert_eq!(run.counters, runs[0].counters);
        }
    }

    #[test]
    fn metered_run_is_bitwise_identical_and_root_ordered() {
        let g = gen::watts_strogatz(300, 6, 0.1, 3);
        let roots: Vec<u32> = (0..300).collect();
        let plain = run_roots(&g, &titan(), &roots, 4, &mut FreeModel).unwrap();
        for threads in [1usize, 2, 8] {
            let (run, metrics) =
                run_roots_metered(&g, &titan(), &roots, threads, &mut FreeModel).unwrap();
            assert_eq!(run.scores, plain.scores);
            assert_eq!(run.per_root_seconds, plain.per_root_seconds);
            assert_eq!(run.counters, plain.counters);
            let order: Vec<u32> = metrics.iter().map(|m| m.root).collect();
            assert_eq!(order, roots, "metrics arrive in global root order");
            for (m, &d) in metrics.iter().zip(&run.max_depths) {
                assert_eq!(m.max_depth(), d);
            }
        }
    }

    #[test]
    fn matches_sequential_brandes() {
        let g = gen::erdos_renyi(120, 360, 11);
        let roots: Vec<u32> = (0..120).collect();
        let mut run = run_roots(&g, &titan(), &roots, 4, &mut FreeModel).unwrap();
        brandes::halve_if_symmetric(&g, &mut run.scores);
        let expect = brandes::betweenness(&g);
        for (i, (e, a)) in expect.iter().zip(&run.scores).enumerate() {
            assert!((e - a).abs() < 1e-9, "vertex {i}: {e} vs {a}");
        }
    }

    #[test]
    fn cpu_path_matches_sequential() {
        let g = gen::grid(9, 9);
        let roots: Vec<u32> = (0..81).collect();
        let par = cpu_betweenness_from_roots(&g, &roots, 3).unwrap();
        let seq = brandes::betweenness(&g);
        for (p, s) in par.iter().zip(&seq) {
            assert!((p - s).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_roots() {
        let g = gen::path(5);
        let run = run_roots(&g, &titan(), &[], 4, &mut FreeModel).unwrap();
        assert!(run.scores.iter().all(|&s| s == 0.0));
        assert!(run.per_root_seconds.is_empty());
        assert!(cpu_betweenness_from_roots(&g, &[], 2)
            .unwrap()
            .iter()
            .all(|&s| s == 0.0));
    }

    #[test]
    fn more_threads_than_shards() {
        let g = gen::path(10);
        let run = run_roots(&g, &titan(), &[0, 5], 64, &mut FreeModel).unwrap();
        assert_eq!(run.max_depths.len(), 2);
        assert_eq!(run.max_depths[0], 9);
    }

    /// Prices like [`FreeModel`] but panics when it meets `bad_root`
    /// — a stand-in for a buggy cost model or a corrupted workspace.
    struct PanickyModel {
        bad_root: u32,
    }

    impl CostModel for PanickyModel {
        fn begin_root(&mut self, _g: &Csr, root: VertexId) {
            assert!(root != self.bad_root, "injected model panic on root {root}");
        }
        fn price(&mut self, _g: &Csr, _d: &DeviceConfig, _l: &LevelInfo<'_>) -> PricedIteration {
            PricedIteration::default()
        }
    }

    impl ShardableCostModel for PanickyModel {
        fn fork(&self) -> Self {
            PanickyModel {
                bad_root: self.bad_root,
            }
        }
    }

    #[test]
    fn worker_panic_is_contained_and_names_the_shard() {
        let g = gen::watts_strogatz(200, 6, 0.1, 1);
        let roots: Vec<u32> = (0..200).collect();
        // Root 77 lives in shard 77 / shard_size(200) = 19.
        let bad_shard = 77 / shard_size(200);
        for threads in [1usize, 4] {
            let err = run_roots(
                &g,
                &titan(),
                &roots,
                threads,
                &mut PanickyModel { bad_root: 77 },
            )
            .unwrap_err();
            match err {
                SimError::WorkerPanic { worker, ref what } => {
                    assert_eq!(worker, bad_shard, "error must name the faulty shard");
                    assert!(what.contains("root 77"), "payload preserved: {what}");
                }
                other => panic!("expected WorkerPanic, got {other:?}"),
            }
        }
    }

    #[test]
    fn panic_free_runs_are_unaffected_by_containment() {
        let g = gen::grid(8, 8);
        let roots: Vec<u32> = (0..64).collect();
        let guarded = run_roots(
            &g,
            &titan(),
            &roots,
            4,
            &mut PanickyModel { bad_root: 9999 },
        )
        .unwrap();
        let free = run_roots(&g, &titan(), &roots, 4, &mut FreeModel).unwrap();
        assert_eq!(guarded.scores, free.scores);
    }

    #[test]
    fn effective_threads_resolution() {
        assert_eq!(effective_threads(3), 3);
        assert!(effective_threads(0) >= 1);
    }

    #[test]
    fn shard_partition_is_thread_independent() {
        assert_eq!(shard_size(1), 1);
        assert_eq!(shard_size(64), 1);
        assert_eq!(shard_size(65), 2);
        assert_eq!(shard_size(1000), 16);
        // 1000 roots -> 63 shards of 16 even though MAX_SHARDS is 64.
        assert_eq!(1000usize.div_ceil(shard_size(1000)), 63);
    }

    /// The partition covers `0..num_roots` exactly once, as
    /// `shards - 1` full shards plus a (possibly short, never empty)
    /// last shard.
    fn assert_partition(num_roots: usize) {
        let size = shard_size(num_roots);
        let shards = num_roots.div_ceil(size);
        assert!(shards <= MAX_SHARDS, "{num_roots} roots -> {shards} shards");
        let mut covered = 0usize;
        for s in 0..shards {
            let lo = s * size;
            let hi = (lo + size).min(num_roots);
            assert_eq!(lo, covered, "shard {s} starts at the previous end");
            assert!(hi > lo, "shard {s} of {num_roots} roots is empty");
            if s + 1 < shards {
                assert_eq!(hi - lo, size, "only the last shard may be short");
            }
            covered = hi;
        }
        assert_eq!(covered, num_roots, "shards cover every root");
    }

    #[test]
    fn shard_size_edge_behavior() {
        // Fewer roots than MAX_SHARDS: one root per shard, one shard
        // per root.
        for n in 1..=MAX_SHARDS {
            assert_eq!(shard_size(n), 1);
            assert_eq!(n.div_ceil(shard_size(n)), n);
        }
        // Exact multiples of MAX_SHARDS: every shard full.
        for mult in [2usize, 3, 10] {
            let n = MAX_SHARDS * mult;
            assert_eq!(shard_size(n), mult);
            assert_eq!(n % shard_size(n), 0);
        }
        // Uneven last shard: 130 roots -> shards of 3, and the 44th
        // shard holds the single leftover root.
        let n = 130;
        let size = shard_size(n);
        assert_eq!(size, 3);
        let shards = n.div_ceil(size);
        assert_eq!(shards, 44);
        assert_eq!(
            n - (shards - 1) * size,
            1,
            "last shard is short but nonempty"
        );
        // The partition is well-formed at every interesting size. The
        // thread count never enters `shard_size`'s signature, so the
        // partition is thread-count-independent by construction.
        for n in [1usize, 5, 63, 64, 65, 127, 128, 129, 1000, 4096, 4097] {
            assert_partition(n);
        }
    }

    #[test]
    fn scheduled_runs_are_bitwise_identical_to_static() {
        // A skewed graph: a deep road-like chain component and a
        // shallow dense one, so the dynamic schedules actually move
        // shards between workers.
        let mut edges: Vec<(u32, u32)> = (0..149u32).map(|v| (v, v + 1)).collect();
        let sw = gen::watts_strogatz(150, 6, 0.1, 3);
        for v in sw.vertices() {
            for &w in sw.neighbors(v) {
                if v < w {
                    edges.push((v + 150, w + 150));
                }
            }
        }
        let g = bc_graph::Csr::from_undirected_edges(300, edges);
        let roots: Vec<u32> = (0..300).collect();
        let baseline = run_roots(&g, &titan(), &roots, 1, &mut FreeModel).unwrap();
        for schedule in Schedule::ALL {
            for threads in [1usize, 3, 8] {
                let run =
                    run_roots_scheduled(&g, &titan(), &roots, threads, schedule, &mut FreeModel)
                        .unwrap();
                assert_eq!(run.scores, baseline.scores, "{schedule} x {threads}");
                assert_eq!(run.per_root_seconds, baseline.per_root_seconds);
                assert_eq!(run.max_depths, baseline.max_depths);
                assert_eq!(run.counters, baseline.counters);
                let cpu =
                    cpu_betweenness_from_roots_scheduled(&g, &roots, threads, schedule).unwrap();
                let cpu_base = cpu_betweenness_from_roots(&g, &roots, 1).unwrap();
                assert_eq!(cpu, cpu_base, "cpu {schedule} x {threads}");
            }
        }
    }

    #[test]
    fn contributions_reassemble_bitwise_and_carry_levels() {
        let g = gen::watts_strogatz(300, 6, 0.1, 5);
        let roots: Vec<u32> = (0..300).step_by(2).collect();
        let baseline =
            run_roots_scheduled(&g, &titan(), &roots, 1, Schedule::Static, &mut FreeModel).unwrap();
        for schedule in Schedule::ALL {
            for threads in [1usize, 2, 4] {
                let contribs = run_roots_contributions(
                    &g,
                    &titan(),
                    &roots,
                    threads,
                    schedule,
                    &mut FreeModel,
                )
                .unwrap();
                // Global root order at any thread count and schedule.
                let order: Vec<u32> = contribs.iter().map(|c| c.root).collect();
                assert_eq!(order, roots, "{schedule} x {threads}");
                let seconds: Vec<f64> = contribs.iter().map(|c| c.seconds).collect();
                assert_eq!(seconds, baseline.per_root_seconds);
                let depths: Vec<u32> = contribs.iter().map(|c| c.max_depth).collect();
                assert_eq!(depths, baseline.max_depths);
                // Reassembly reproduces the shard-merged sum bitwise.
                let parts: Vec<&[(u32, f64)]> =
                    contribs.iter().map(|c| c.entries.as_slice()).collect();
                let scores = merge_contribution_entries(g.num_vertices(), &parts);
                assert_eq!(scores, baseline.scores, "{schedule} x {threads}");
            }
        }
        // Levels are the BFS distance map; entries are sorted nonzero.
        let contribs =
            run_roots_contributions(&g, &titan(), &roots, 2, Schedule::Static, &mut FreeModel)
                .unwrap();
        for c in contribs.iter().take(8) {
            assert_eq!(c.levels, bc_graph::traversal::bfs_distances(&g, c.root));
            assert!(c.entries.windows(2).all(|w| w[0].0 < w[1].0));
            assert!(c.entries.iter().all(|&(_, d)| d != 0.0));
            assert!(c.heap_bytes() > 0);
        }
    }

    #[test]
    fn contributions_contain_worker_panics() {
        let g = gen::watts_strogatz(200, 6, 0.1, 1);
        let roots: Vec<u32> = (0..200).collect();
        let err = run_roots_contributions(
            &g,
            &titan(),
            &roots,
            4,
            Schedule::Static,
            &mut PanickyModel { bad_root: 77 },
        )
        .unwrap_err();
        assert!(matches!(err, SimError::WorkerPanic { .. }));
    }

    #[test]
    fn merge_contribution_entries_empty_and_single() {
        assert!(merge_contribution_entries(4, &[]).iter().all(|&s| s == 0.0));
        let one: &[(u32, f64)] = &[(1, 2.5), (3, 0.5)];
        let scores = merge_contribution_entries(4, &[one]);
        assert_eq!(scores, vec![0.0, 2.5, 0.0, 0.5]);
    }

    #[test]
    fn scheduled_metered_reports_a_complete_worker_partition() {
        let g = gen::watts_strogatz(256, 6, 0.1, 9);
        let roots: Vec<u32> = (0..256).collect();
        let shards = 256usize.div_ceil(shard_size(256));
        for schedule in Schedule::ALL {
            let (_, _, workers) =
                run_roots_scheduled_metered(&g, &titan(), &roots, 4, schedule, &mut FreeModel)
                    .unwrap();
            assert_eq!(workers.len(), 4, "{schedule}");
            let mut claimed: Vec<u32> = workers.iter().flat_map(|w| w.shards.clone()).collect();
            claimed.sort_unstable();
            assert_eq!(
                claimed,
                (0..shards as u32).collect::<Vec<_>>(),
                "{schedule}: workers partition the shard space"
            );
            let roots_processed: u64 = workers.iter().map(|w| w.roots_processed).sum();
            assert_eq!(roots_processed, 256, "{schedule}");
            for w in &workers {
                assert_eq!(w.schedule, schedule.name());
                assert_eq!(w.phase_roots, 256);
                assert_eq!(w.shard_size, shard_size(256) as u64);
                assert!(w.busy_seconds >= 0.0 && w.idle_seconds >= 0.0);
                if schedule != Schedule::WorkStealing {
                    assert_eq!(w.steals, 0, "only work-stealing steals");
                }
            }
        }
    }
}
