//! The rooted search engine shared by all simulated GPU methods.
//!
//! Every method in the paper computes the *same function* per root —
//! Brandes' shortest-path counting followed by dependency
//! accumulation — and differs only in how threads are distributed to
//! work, which changes the *cost* of each search iteration, not its
//! result. The engine therefore executes one faithful functional
//! pass (the paper's Algorithms 1–3: explicit queues, the
//! level-segmented stack `S` with its `ends` array, successor-based
//! accumulation) and asks a method-specific [`CostModel`] to price
//! each iteration. This is the classic functional/timing split used
//! by architecture simulators.
//!
//! Every memory access the simulated kernels below emit (via
//! [`TraceSink`]) must be admitted by the symbolic access
//! specifications in [`crate::kernel_spec`]; `bc-analyze` replays
//! recorded traces against those specs, so changes to the emission
//! sites here must be mirrored there (the conformance gate fails
//! otherwise).

use crate::frontier::{CompressedFrontier, VERTICES_PER_SUMMARY_WORD, VERTICES_PER_WORD};
use bc_gpusim::trace::{AccessKind, KernelArray, NullSink, TraceEvent, TracePhase, TraceSink};
use bc_gpusim::{DeviceConfig, IterationWork, KernelCounters};
use bc_graph::{Csr, VertexId};
use bc_metrics::{
    LevelMetrics, MetricPhase, MetricTraversal, MetricsSink, NullMetrics, SwitchReason,
};

/// Distance marker for undiscovered vertices (the paper's `∞`).
pub const INFINITY: u32 = u32::MAX;

/// Which half of Brandes' algorithm an iteration belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Shortest-path calculation (Algorithm 2).
    Forward,
    /// Dependency accumulation (Algorithm 3).
    Backward,
}

/// Direction of one forward BFS level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Traversal {
    /// Top-down: frontier vertices push discoveries to their
    /// neighbors through atomicCAS-deduplicated queues (Algorithm 2).
    Push,
    /// Bottom-up: unvisited vertices pull from parents found in an
    /// O(n)-bit frontier bitmap (Beamer-style direction
    /// optimization), with no per-edge CAS and no σ atomicAdd.
    Pull,
}

/// Pre-level frontier statistics handed to
/// [`CostModel::choose_traversal`] — everything a Beamer-style
/// direction heuristic needs, gathered before the level runs.
#[derive(Clone, Copy, Debug)]
pub struct FrontierSnapshot {
    /// BFS depth about to be processed.
    pub depth: u32,
    /// Vertices in the upcoming frontier (`Q_curr` occupancy).
    pub frontier_vertices: u64,
    /// Directed edges out of the upcoming frontier.
    pub frontier_edges: u64,
    /// Vertices discovered so far, frontier included.
    pub visited_vertices: u64,
    /// Directed edges out of every discovered vertex, frontier
    /// included (so `2m - visited_edges` bounds the unexplored side).
    pub visited_edges: u64,
}

/// Bottom-up statistics of one pull level, for pull-aware pricing.
#[derive(Debug)]
pub struct PullLevelInfo<'a> {
    /// Vertices still unvisited when the level began (the vertices
    /// the bottom-up kernel scans adjacency for).
    pub unvisited: u64,
    /// Directed edges out of those unvisited vertices (the level's
    /// worst-case probe count).
    pub unvisited_edges: u64,
    /// Whether this level had to materialize the frontier bitmap
    /// from `Q_curr` (true on a push→pull switch; steady-state pull
    /// levels reuse the previous level's next bitmap by swap).
    pub rebuilt_frontier_bitmap: bool,
    /// Occupied 32-bit leaf words of the level's compressed frontier
    /// (`F_curr`) — the words the compaction kernel materialized, or
    /// that the previous level's discoveries left behind.
    pub frontier_words: u64,
    /// Occupied summary words of the compressed frontier (one bit
    /// covers 32 leaf words = 1024 vertices).
    pub summary_words: u64,
    /// Degree of each unvisited vertex in scan order, for SIMT
    /// divergence pricing of the adjacency scans.
    pub unvisited_degrees: &'a [u32],
}

/// Everything a cost model may inspect about one search iteration.
#[derive(Debug)]
pub struct LevelInfo<'a> {
    /// Forward or backward sweep.
    pub phase: Phase,
    /// BFS depth of the vertices being processed.
    pub depth: u32,
    /// How the level executed ([`Traversal::Push`] for every
    /// backward level — the successor sweep has no pull variant).
    pub traversal: Traversal,
    /// The vertices processed this iteration (the vertex frontier —
    /// `Q_curr` forward, the `S` segment backward).
    pub frontier: &'a [VertexId],
    /// Directed edges out of the frontier (the edge frontier).
    pub frontier_edges: u64,
    /// Vertices discovered into `Q_next` (forward only).
    pub discovered: u64,
    /// σ additions (forward) or δ contributions (backward) performed.
    pub updates: u64,
    /// Bottom-up statistics, present exactly when `traversal` is
    /// [`Traversal::Pull`].
    pub pull: Option<PullLevelInfo<'a>>,
}

/// An iteration's price plus its bookkeeping of wasted work.
#[derive(Clone, Copy, Debug, Default)]
pub struct PricedIteration {
    /// The work record handed to the timing model.
    pub work: IterationWork,
    /// Edge inspections on non-frontier edges.
    pub wasted_edges: u64,
    /// Vertex status checks on non-frontier vertices.
    pub wasted_vertex_checks: u64,
}

/// Method-specific pricing of the engine's iterations.
pub trait CostModel {
    /// Called before each root's search begins.
    fn begin_root(&mut self, _g: &Csr, _root: VertexId) {}

    /// Price the O(n) local-variable initialization of Algorithm 1.
    fn price_init(&mut self, g: &Csr, device: &DeviceConfig) -> PricedIteration {
        // d, σ, δ plus queue bookkeeping: a coalesced streaming write
        // of a few words per vertex.
        let n = g.num_vertices() as u64;
        PricedIteration {
            work: IterationWork {
                warp_steps: bc_gpusim::warp::balanced_warp_steps(
                    n,
                    device.threads_per_block,
                    device.warp_size,
                ),
                coalesced_bytes: n * 12,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    /// Price one search iteration.
    fn price(&mut self, g: &Csr, device: &DeviceConfig, level: &LevelInfo<'_>) -> PricedIteration;

    /// Pick the direction of the upcoming forward level. Consulted
    /// once per level, before it runs, and only on symmetric
    /// adjacency (a bottom-up vertex must see its in-edges in its own
    /// list). The decision must depend only on the snapshot and
    /// per-root state reset in [`CostModel::begin_root`], so every
    /// thread count replays the same per-root schedule bitwise.
    fn choose_traversal(
        &mut self,
        _g: &Csr,
        _device: &DeviceConfig,
        _frontier: &FrontierSnapshot,
    ) -> Traversal {
        Traversal::Push
    }
}

/// Reusable per-root buffers (Algorithm 1 state).
pub struct SearchWorkspace {
    dist: Vec<u32>,
    sigma: Vec<f64>,
    delta: Vec<f64>,
    /// The stack `S`: vertices in discovery order, level-segmented.
    s: Vec<VertexId>,
    /// `ends[i]..ends[i+1]` is the slice of `S` at depth `i`.
    ends: Vec<u32>,
    /// Scratch: degrees of the unvisited vertices of the most recent
    /// pull level, in scan order (for divergence pricing).
    pull_degrees: Vec<u32>,
    /// `F_curr` — the compressed (hierarchical bitmap) frontier the
    /// bottom-up sweep probes. Materialized by the frontier-compact
    /// kernel on a push→pull switch, thereafter maintained by
    /// swapping with `f_next`.
    f_curr: CompressedFrontier,
    /// `F_next` — discoveries of the running pull level.
    f_next: CompressedFrontier,
    /// Scratch: one backward level's successor contributions, sorted
    /// into a canonical order before summation so δ is bitwise
    /// invariant under any relabeling of the adjacency lists.
    contrib: Vec<f64>,
}

impl SearchWorkspace {
    /// Allocate buffers for an `n`-vertex graph.
    pub fn new(n: usize) -> Self {
        SearchWorkspace {
            dist: vec![INFINITY; n],
            sigma: vec![0.0; n],
            delta: vec![0.0; n],
            s: Vec::with_capacity(n),
            ends: Vec::with_capacity(64),
            pull_degrees: Vec::new(),
            f_curr: CompressedFrontier::new(n),
            f_next: CompressedFrontier::new(n),
            contrib: Vec::new(),
        }
    }

    fn reset(&mut self, root: VertexId) {
        // O(reached) reset: every dirty entry of dist/sigma/delta
        // belongs to a vertex the previous search pushed onto `s`
        // (dist and sigma are only written on discovery, delta only
        // for stack members), so sweeping the old stack restores the
        // pristine state without an O(n) fill.
        for &v in &self.s {
            self.dist[v as usize] = INFINITY;
            self.sigma[v as usize] = 0.0;
            self.delta[v as usize] = 0.0;
        }
        self.s.clear();
        self.ends.clear();
        self.dist[root as usize] = 0;
        self.sigma[root as usize] = 1.0;
        self.s.push(root);
        self.ends.push(0);
        self.ends.push(1);
    }

    /// Distances from the most recent root (valid after
    /// [`process_root`]).
    pub fn dist(&self) -> &[u32] {
        &self.dist
    }

    /// Path counts from the most recent root.
    pub fn sigma(&self) -> &[f64] {
        &self.sigma
    }

    /// Dependencies of the most recent root.
    pub fn delta(&self) -> &[f64] {
        &self.delta
    }

    /// The stack `S` of the most recent root: reached vertices in
    /// discovery order, level-segmented by [`Self::ends`].
    pub fn stack(&self) -> &[VertexId] {
        &self.s
    }

    /// Level boundaries of [`Self::stack`]: `ends[i]..ends[i + 1]` is
    /// the slice of `S` at BFS depth `i`.
    pub fn ends(&self) -> &[u32] {
        &self.ends
    }

    /// Overwrite one σ entry. Fault-injection hook for the
    /// verification layer's tests (`bc-verify` must prove its
    /// σ-consistency check actually fires); not used by any solver
    /// path.
    pub fn corrupt_sigma_for_tests(&mut self, v: usize, value: f64) {
        self.sigma[v] = value;
    }
}

/// Per-root simulation outcome.
#[derive(Clone, Debug, Default)]
pub struct RootOutcome {
    /// Work and simulated block-seconds for this root.
    pub counters: KernelCounters,
    /// Deepest BFS level reached (the max distance within the root's
    /// component; 0 for an isolated root).
    pub max_depth: u32,
    /// Vertices reached (including the root).
    pub reached: usize,
    /// Vertex-frontier size per forward level (Figure 3's trace).
    pub frontier_sizes: Vec<usize>,
    /// Edge-frontier size per forward level.
    pub edge_frontier_sizes: Vec<u64>,
    /// Simulated seconds of each forward level (Table I's per-
    /// iteration time).
    pub forward_level_seconds: Vec<f64>,
    /// Direction each forward level executed in.
    pub forward_traversals: Vec<Traversal>,
}

impl RootOutcome {
    /// Clear for reuse without dropping the trace buffers.
    pub fn reset(&mut self) {
        self.counters = KernelCounters::default();
        self.max_depth = 0;
        self.reached = 0;
        self.frontier_sizes.clear();
        self.edge_frontier_sizes.clear();
        self.forward_level_seconds.clear();
        self.forward_traversals.clear();
    }

    /// Forward levels that ran bottom-up.
    pub fn pull_levels(&self) -> usize {
        self.forward_traversals
            .iter()
            .filter(|&&t| t == Traversal::Pull)
            .count()
    }
}

/// Immutable parameters naming one root's simulation: the graph, the
/// root, and the device whose timing model prices each iteration.
/// Bundled so the `process_root_*` entry points stay at a signature
/// size that reads as what it is — one search, one set of knobs.
#[derive(Clone, Copy, Debug)]
pub struct RootContext<'a> {
    /// The graph being searched.
    pub g: &'a Csr,
    /// The search root.
    pub root: VertexId,
    /// The simulated device pricing each iteration.
    pub device: &'a DeviceConfig,
}

/// Run one root's shortest-path counting + dependency accumulation,
/// adding δ contributions into `bc`, pricing every iteration with
/// `model` on `device`.
pub fn process_root(
    g: &Csr,
    root: VertexId,
    device: &DeviceConfig,
    ws: &mut SearchWorkspace,
    model: &mut dyn CostModel,
    bc: &mut [f64],
) -> RootOutcome {
    let mut out = RootOutcome::default();
    process_root_into(&RootContext { g, root, device }, ws, model, bc, &mut out);
    out
}

/// [`process_root`] writing into a caller-owned [`RootOutcome`], so a
/// multi-root loop reuses its trace buffers instead of reallocating
/// them per root.
pub fn process_root_into(
    ctx: &RootContext<'_>,
    ws: &mut SearchWorkspace,
    model: &mut dyn CostModel,
    bc: &mut [f64],
    out: &mut RootOutcome,
) {
    process_root_traced(ctx, ws, model, bc, out, &mut NullSink);
}

/// [`process_root_into`] additionally emitting the logical per-thread
/// memory accesses of each level to `sink` — one event per read,
/// write, or atomic a GPU thread would perform on the named kernel
/// arrays (`d`, `σ`, `δ`, `Q_curr`/`Q_next`, `S`/`ends`, and the
/// bottom-up sweep's `visited`/`F_curr`/`F_next` bitmaps).
///
/// Logical thread ids are lane positions within the level's frontier
/// (push), or vertex/word ids (pull — one lane per unvisited vertex,
/// one per visited-bitmap word). With [`NullSink`] every emission
/// site compiles out ([`TraceSink::ENABLED`] is a constant `false`),
/// which is how the untraced [`process_root_into`] keeps its cost;
/// `bc-verify`'s recorder captures the events for race detection.
pub fn process_root_traced<S: TraceSink>(
    ctx: &RootContext<'_>,
    ws: &mut SearchWorkspace,
    model: &mut dyn CostModel,
    bc: &mut [f64],
    out: &mut RootOutcome,
    sink: &mut S,
) {
    process_root_observed(ctx, ws, model, bc, out, sink, &mut NullMetrics);
}

/// [`process_root_traced`] additionally emitting one [`LevelMetrics`]
/// record per kernel launch to `metrics` — the aggregate counters the
/// paper argues with (`|Q_curr|`/`|Q_next|`, edges inspected, CAS
/// outcomes, priced atomics, the direction decision and its reason),
/// captured *after* each level is priced.
///
/// The metrics sink only observes values the engine already computed
/// for pricing, so a metered run's scores and priced timings are
/// bitwise identical to an unmetered one; with [`NullMetrics`]
/// (`MetricsSink::ENABLED == false`) every emission site — record
/// construction included — compiles out, exactly like the trace
/// layer's [`NullSink`].
pub fn process_root_observed<S: TraceSink, M: MetricsSink>(
    ctx: &RootContext<'_>,
    ws: &mut SearchWorkspace,
    model: &mut dyn CostModel,
    bc: &mut [f64],
    out: &mut RootOutcome,
    sink: &mut S,
    metrics: &mut M,
) {
    let (g, root, device) = (ctx.g, ctx.root, ctx.device);
    out.reset();
    ws.reset(root);
    model.begin_root(g, root);
    if M::ENABLED {
        metrics.begin_root(root);
    }

    let init = model.price_init(g, device);
    charge(&mut out.counters, device, &init);

    // ---- Stage 1: shortest-path calculation (Algorithm 2) ----
    let mut depth = 0u32;
    let mut visited_edges = 0u64;
    let mut prev_pull = false;
    loop {
        let level_start = ws.ends[depth as usize] as usize;
        let level_end = ws.ends[depth as usize + 1] as usize;
        if level_start == level_end {
            break;
        }
        let frontier_edges: u64 = ws.s[level_start..level_end]
            .iter()
            .map(|&v| g.degree(v) as u64)
            .sum();
        visited_edges += frontier_edges;
        // Direction choice happens before the level runs, from
        // already-known frontier statistics. Pull needs symmetric
        // adjacency (a vertex scanning its own list must see its
        // in-edges), so directed graphs always push.
        let traversal = if g.is_symmetric() {
            model.choose_traversal(
                g,
                device,
                &FrontierSnapshot {
                    depth,
                    frontier_vertices: (level_end - level_start) as u64,
                    frontier_edges,
                    visited_vertices: level_end as u64,
                    visited_edges,
                },
            )
        } else {
            Traversal::Push
        };
        if S::ENABLED {
            sink.begin_level(TracePhase::Forward, depth);
        }
        let mut updates = 0u64;
        let mut pull_unvisited = 0u64;
        let mut pull_unvisited_edges = 0u64;
        let mut pull_frontier_words = 0u64;
        let mut pull_summary_words = 0u64;
        match traversal {
            Traversal::Push => {
                // Expand the frontier; `s` grows with Q_next's
                // contents.
                for qi in level_start..level_end {
                    let v = ws.s[qi];
                    let lane = (qi - level_start) as u32;
                    if S::ENABLED {
                        // The thread dequeues its own Q_curr slot.
                        sink.record(TraceEvent {
                            thread: lane,
                            array: KernelArray::QCurr,
                            index: qi as u32,
                            kind: AccessKind::Read,
                        });
                    }
                    for &w in g.neighbors(v) {
                        if S::ENABLED {
                            // atomicCAS(d[w], ∞, d[v] + 1) on every
                            // inspected edge (Algorithm 2, line 8).
                            sink.record(TraceEvent {
                                thread: lane,
                                array: KernelArray::Dist,
                                index: w,
                                kind: AccessKind::AtomicCas,
                            });
                        }
                        if ws.dist[w as usize] == INFINITY {
                            // atomicCAS(d[w], ∞, d[v] + 1) winner
                            // enqueues w.
                            ws.dist[w as usize] = depth + 1;
                            if S::ENABLED {
                                // Queue-tail bump, then the write
                                // into the claimed Q_next slot.
                                sink.record(TraceEvent {
                                    thread: lane,
                                    array: KernelArray::Ends,
                                    index: depth + 1,
                                    kind: AccessKind::AtomicAdd,
                                });
                                sink.record(TraceEvent {
                                    thread: lane,
                                    array: KernelArray::QNext,
                                    index: ws.s.len() as u32,
                                    kind: AccessKind::Write,
                                });
                            }
                            ws.s.push(w);
                        }
                        if S::ENABLED {
                            // The plain d[w] == d[v] + 1 check (line
                            // 11): a non-atomic read racing only
                            // against atomics.
                            sink.record(TraceEvent {
                                thread: lane,
                                array: KernelArray::Dist,
                                index: w,
                                kind: AccessKind::Read,
                            });
                        }
                        if ws.dist[w as usize] == depth + 1 {
                            if S::ENABLED {
                                sink.record(TraceEvent {
                                    thread: lane,
                                    array: KernelArray::Sigma,
                                    index: v,
                                    kind: AccessKind::Read,
                                });
                                sink.record(TraceEvent {
                                    thread: lane,
                                    array: KernelArray::Sigma,
                                    index: w,
                                    kind: AccessKind::AtomicAdd,
                                });
                            }
                            // atomicAdd(σ[w], σ[v])
                            ws.sigma[w as usize] += ws.sigma[v as usize];
                            updates += 1;
                        }
                    }
                }
            }
            Traversal::Pull => {
                // Frontier compaction — on a push→pull switch the
                // sparse Q_curr is expanded into the compressed
                // (hierarchical bitmap) frontier: one leaf-word and
                // one summary-word atomicOr per frontier vertex (the
                // frontier-compact kernel, fused ahead of the pull
                // scan behind a grid-wide sync). Steady-state pull
                // levels inherit F_curr from the previous level's
                // F_next by swap and skip the compaction entirely.
                if !prev_pull {
                    ws.f_curr.clear();
                    ws.f_next.clear();
                    for qi in level_start..level_end {
                        let v = ws.s[qi];
                        if S::ENABLED {
                            let lane = (qi - level_start) as u32;
                            sink.record(TraceEvent {
                                thread: lane,
                                array: KernelArray::QCurr,
                                index: qi as u32,
                                kind: AccessKind::Read,
                            });
                            sink.record(TraceEvent {
                                thread: lane,
                                array: KernelArray::FrontierBits,
                                index: v / VERTICES_PER_WORD,
                                kind: AccessKind::AtomicOr,
                            });
                            sink.record(TraceEvent {
                                thread: lane,
                                array: KernelArray::SummaryBits,
                                index: v / VERTICES_PER_SUMMARY_WORD,
                                kind: AccessKind::AtomicOr,
                            });
                        }
                        ws.f_curr.set(v);
                    }
                }
                // Pass A — the bottom-up kernel this level prices:
                // every unvisited vertex scans its own adjacency for
                // parents in the compressed frontier, with no early
                // exit (σ needs *every* parent at depth `depth`, so
                // the scan may not stop at the first match). The
                // visited bitmap stays logical (the functional code
                // reads `dist`), exactly as the push path compares
                // `dist` while tracing an atomicCAS.
                let n = g.num_vertices();
                ws.pull_degrees.clear();
                if S::ENABLED {
                    // One lane per visited-bitmap word: the scan that
                    // yields this lane's unvisited vertices.
                    for word in 0..(n as u32).div_ceil(32) {
                        sink.record(TraceEvent {
                            thread: word,
                            array: KernelArray::VisitedBits,
                            index: word,
                            kind: AccessKind::Read,
                        });
                    }
                }
                for w in 0..n as u32 {
                    if ws.dist[w as usize] != INFINITY {
                        continue;
                    }
                    pull_unvisited += 1;
                    let deg = g.degree(w);
                    pull_unvisited_edges += deg as u64;
                    ws.pull_degrees.push(deg);
                    let mut parents = 0u64;
                    for &v in g.neighbors(w) {
                        if S::ENABLED {
                            // F_curr membership probe for the
                            // neighbor — a read-only bitmap during
                            // the scan (the compaction's atomicOrs
                            // are sequenced before it), so no
                            // synchronization.
                            sink.record(TraceEvent {
                                thread: w,
                                array: KernelArray::FrontierBits,
                                index: v / VERTICES_PER_WORD,
                                kind: AccessKind::Read,
                            });
                        }
                        // The compressed frontier *is* the membership
                        // oracle; it must agree with the distance
                        // array it compacted.
                        debug_assert_eq!(
                            ws.f_curr.contains(v),
                            ws.dist[v as usize] == depth,
                            "compressed frontier diverged from distances at {v}"
                        );
                        if ws.f_curr.contains(v) {
                            if S::ENABLED {
                                // Parent σ gather: frontier cells are
                                // never written during a pull level.
                                sink.record(TraceEvent {
                                    thread: w,
                                    array: KernelArray::Sigma,
                                    index: v,
                                    kind: AccessKind::Read,
                                });
                            }
                            parents += 1;
                        }
                    }
                    if parents > 0 {
                        ws.dist[w as usize] = depth + 1;
                        ws.f_next.set(w);
                        if S::ENABLED {
                            // The owner alone writes its d and σ —
                            // pull needs no CAS and no σ atomicAdd.
                            // Discovery is announced with one
                            // word-granular atomicOr into F_next.
                            sink.record(TraceEvent {
                                thread: w,
                                array: KernelArray::Dist,
                                index: w,
                                kind: AccessKind::Write,
                            });
                            sink.record(TraceEvent {
                                thread: w,
                                array: KernelArray::Sigma,
                                index: w,
                                kind: AccessKind::Write,
                            });
                            sink.record(TraceEvent {
                                thread: w,
                                array: KernelArray::NextBits,
                                index: w / 32,
                                kind: AccessKind::AtomicOr,
                            });
                        }
                    }
                }
                // Pass B — the bookkeeping launch that compacts
                // F_next into `S` and accumulates σ. It replays the
                // push kernel's discovery and accumulation order
                // exactly, so σ (an order-sensitive f64 sum) and the
                // stack layout stay bitwise identical to push mode;
                // its memory traffic is folded into the level's price
                // (`methods::cost::bottom_up_level`), not traced.
                for qi in level_start..level_end {
                    let v = ws.s[qi];
                    // σ of a frontier vertex is never touched during
                    // its own level, so hoisting the read is exact.
                    let sv = ws.sigma[v as usize];
                    for &w in g.neighbors(v) {
                        if ws.dist[w as usize] == depth + 1 {
                            if ws.sigma[w as usize] == 0.0 {
                                // First touch enqueues w at exactly
                                // the position push's winning CAS
                                // would have (σ of a discovered but
                                // untouched vertex is 0, and frontier
                                // σ is always positive).
                                ws.s.push(w);
                            }
                            ws.sigma[w as usize] += sv;
                            updates += 1;
                        }
                    }
                }
                pull_frontier_words = ws.f_curr.occupied_leaf_words();
                pull_summary_words = ws.f_curr.occupied_summary_words();
                // The discoveries become the next level's frontier:
                // swap the bitmaps and clear the new F_next (a
                // summary-guided clear, folded into the level's
                // bookkeeping price like the F_next→S compaction
                // above).
                std::mem::swap(&mut ws.f_curr, &mut ws.f_next);
                ws.f_next.clear();
            }
        }
        let discovered = ws.s.len() - level_end;
        let pull = (traversal == Traversal::Pull).then_some(PullLevelInfo {
            unvisited: pull_unvisited,
            unvisited_edges: pull_unvisited_edges,
            rebuilt_frontier_bitmap: !prev_pull,
            frontier_words: pull_frontier_words,
            summary_words: pull_summary_words,
            unvisited_degrees: &ws.pull_degrees,
        });
        let info = LevelInfo {
            phase: Phase::Forward,
            depth,
            traversal,
            frontier: &ws.s[level_start..level_end],
            frontier_edges,
            discovered: discovered as u64,
            updates,
            pull,
        };
        let priced = model.price(g, device, &info);
        let level_seconds = device.block_iteration_seconds(&priced.work);
        charge(&mut out.counters, device, &priced);
        // Push inspects the frontier's out-edges; pull's useful
        // probes are the ones that found a frontier parent (the rest
        // are the model's wasted_edges).
        bc_gpusim::counter_add(
            &mut out.counters.useful_edge_inspections,
            match traversal {
                Traversal::Push => frontier_edges,
                Traversal::Pull => updates,
            },
            "useful_edge_inspections",
        );
        out.frontier_sizes.push(level_end - level_start);
        out.edge_frontier_sizes.push(frontier_edges);
        out.forward_level_seconds.push(level_seconds);
        out.forward_traversals.push(traversal);
        if M::ENABLED {
            // Decision provenance: `prev_pull` still holds the
            // previous level's direction here.
            let switch = if depth == 0 {
                SwitchReason::Start
            } else {
                match (prev_pull, traversal == Traversal::Pull) {
                    (false, false) => SwitchReason::StayPush,
                    (false, true) => SwitchReason::SwitchToPull,
                    (true, true) => SwitchReason::StayPull,
                    (true, false) => SwitchReason::SwitchToPush,
                }
            };
            metrics.record_level(LevelMetrics {
                phase: MetricPhase::Forward,
                depth,
                traversal: match traversal {
                    Traversal::Push => MetricTraversal::Push,
                    Traversal::Pull => MetricTraversal::Pull,
                },
                q_curr: (level_end - level_start) as u64,
                q_next: discovered as u64,
                edges_inspected: match traversal {
                    Traversal::Push => frontier_edges,
                    Traversal::Pull => pull_unvisited_edges,
                },
                updates,
                // Push dedups with one atomicCAS per inspected edge;
                // the winners are exactly the discoveries. Pull has
                // no CAS at all.
                cas_attempts: match traversal {
                    Traversal::Push => frontier_edges,
                    Traversal::Pull => 0,
                },
                cas_wins: match traversal {
                    Traversal::Push => discovered as u64,
                    Traversal::Pull => 0,
                },
                priced_atomics: priced.work.atomics,
                frontier_words: pull_frontier_words,
                summary_words: pull_summary_words,
                seconds: level_seconds,
                switch: Some(switch),
            });
        }
        prev_pull = traversal == Traversal::Pull;

        if discovered == 0 {
            break;
        }
        ws.ends.push(ws.s.len() as u32);
        depth += 1;
    }
    out.max_depth = depth;
    out.reached = ws.s.len();

    // ---- Stage 2: dependency accumulation (Algorithm 3) ----
    // Leaves have no successors, so start one level above the
    // deepest (Line 12 of Algorithm 2); depth 0 contributes nothing.
    let mut d = depth.saturating_sub(1);
    while d > 0 {
        let level_start = ws.ends[d as usize] as usize;
        let level_end = ws.ends[d as usize + 1] as usize;
        if S::ENABLED {
            sink.begin_level(TracePhase::Backward, d);
        }
        let mut frontier_edges = 0u64;
        let mut updates = 0u64;
        for si in level_start..level_end {
            let w = ws.s[si];
            let lane = (si - level_start) as u32;
            if S::ENABLED {
                // The thread reads its own stack slot, then σ[w].
                sink.record(TraceEvent {
                    thread: lane,
                    array: KernelArray::Stack,
                    index: si as u32,
                    kind: AccessKind::Read,
                });
                sink.record(TraceEvent {
                    thread: lane,
                    array: KernelArray::Sigma,
                    index: w,
                    kind: AccessKind::Read,
                });
            }
            frontier_edges += g.degree(w) as u64;
            let sw = ws.sigma[w as usize];
            // Successor contributions are collected and sorted into a
            // canonical order (the f64 total order) before summation.
            // The multiset of contributions depends only on the graph
            // *structure* — σ and δ are themselves label-invariant by
            // induction — so the sorted sum makes δ bitwise identical
            // under any permutation of the vertex labels (degree
            // ordered relabeling included), where the raw
            // adjacency-order sum would reassociate the floats.
            ws.contrib.clear();
            for &v in g.neighbors(w) {
                if S::ENABLED {
                    // The successor check d[v] == d + 1: plain read.
                    sink.record(TraceEvent {
                        thread: lane,
                        array: KernelArray::Dist,
                        index: v,
                        kind: AccessKind::Read,
                    });
                }
                if ws.dist[v as usize] == d + 1 {
                    if S::ENABLED {
                        sink.record(TraceEvent {
                            thread: lane,
                            array: KernelArray::Sigma,
                            index: v,
                            kind: AccessKind::Read,
                        });
                        sink.record(TraceEvent {
                            thread: lane,
                            array: KernelArray::Delta,
                            index: v,
                            kind: AccessKind::Read,
                        });
                    }
                    let c = sw / ws.sigma[v as usize] * (1.0 + ws.delta[v as usize]);
                    ws.contrib.push(c);
                    updates += 1;
                }
            }
            ws.contrib.sort_unstable_by(|a, b| a.total_cmp(b));
            let mut dsw = 0.0f64;
            for &c in &ws.contrib {
                dsw += c;
            }
            if S::ENABLED {
                // δ[w] is written exactly once, by its owner — the
                // atomic-free store Algorithm 3 is safe to make.
                sink.record(TraceEvent {
                    thread: lane,
                    array: KernelArray::Delta,
                    index: w,
                    kind: AccessKind::Write,
                });
            }
            ws.delta[w as usize] = dsw;
        }
        let info = LevelInfo {
            phase: Phase::Backward,
            depth: d,
            traversal: Traversal::Push,
            frontier: &ws.s[level_start..level_end],
            frontier_edges,
            discovered: 0,
            updates,
            pull: None,
        };
        let priced = model.price(g, device, &info);
        charge(&mut out.counters, device, &priced);
        bc_gpusim::counter_add(
            &mut out.counters.useful_edge_inspections,
            frontier_edges,
            "useful_edge_inspections",
        );
        if M::ENABLED {
            metrics.record_level(LevelMetrics {
                phase: MetricPhase::Backward,
                depth: d,
                traversal: MetricTraversal::Push,
                q_curr: (level_end - level_start) as u64,
                q_next: 0,
                edges_inspected: frontier_edges,
                updates,
                cas_attempts: 0,
                cas_wins: 0,
                priced_atomics: priced.work.atomics,
                frontier_words: 0,
                summary_words: 0,
                seconds: device.block_iteration_seconds(&priced.work),
                switch: None,
            });
        }
        d -= 1;
    }

    for &w in &ws.s {
        if w != root {
            bc[w as usize] += ws.delta[w as usize];
        }
    }
}

fn charge(counters: &mut KernelCounters, device: &DeviceConfig, priced: &PricedIteration) {
    counters.charge(device, &priced.work);
    bc_gpusim::counter_add(
        &mut counters.wasted_edge_inspections,
        priced.wasted_edges,
        "wasted_edge_inspections",
    );
    bc_gpusim::counter_add(
        &mut counters.wasted_vertex_checks,
        priced.wasted_vertex_checks,
        "wasted_vertex_checks",
    );
}

/// A cost model that prices nothing — used when only the functional
/// result or the frontier traces matter.
#[derive(Clone, Copy, Debug, Default)]
pub struct FreeModel;

impl CostModel for FreeModel {
    fn price_init(&mut self, _g: &Csr, _d: &DeviceConfig) -> PricedIteration {
        PricedIteration::default()
    }
    fn price(&mut self, _g: &Csr, _d: &DeviceConfig, _l: &LevelInfo<'_>) -> PricedIteration {
        PricedIteration::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brandes;
    use bc_graph::gen;

    fn run_all_roots(g: &Csr) -> Vec<f64> {
        let device = DeviceConfig::gtx_titan();
        let mut ws = SearchWorkspace::new(g.num_vertices());
        let mut bc = vec![0.0; g.num_vertices()];
        let mut model = FreeModel;
        for r in g.vertices() {
            process_root(g, r, &device, &mut ws, &mut model, &mut bc);
        }
        if g.is_symmetric() {
            for b in bc.iter_mut() {
                *b *= 0.5;
            }
        }
        bc
    }

    #[test]
    fn engine_matches_brandes_on_shapes() {
        for g in [gen::path(12), gen::star(9), gen::grid(4, 5), gen::cycle(9)] {
            let expect = brandes::betweenness(&g);
            let got = run_all_roots(&g);
            for (e, a) in expect.iter().zip(&got) {
                assert!((e - a).abs() < 1e-9, "{expect:?} vs {got:?}");
            }
        }
    }

    #[test]
    fn engine_matches_brandes_on_random_graphs() {
        for seed in 0..3 {
            let g = gen::erdos_renyi(60, 150, seed);
            let expect = brandes::betweenness(&g);
            let got = run_all_roots(&g);
            for (e, a) in expect.iter().zip(&got) {
                assert!((e - a).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn outcome_describes_search() {
        let g = gen::path(6);
        let device = DeviceConfig::gtx_titan();
        let mut ws = SearchWorkspace::new(6);
        let mut bc = vec![0.0; 6];
        let out = process_root(&g, 0, &device, &mut ws, &mut FreeModel, &mut bc);
        assert_eq!(out.max_depth, 5);
        assert_eq!(out.reached, 6);
        assert_eq!(out.frontier_sizes, vec![1, 1, 1, 1, 1, 1]);
        // Path end vertex degrees: 1 then interior 2s.
        assert_eq!(out.edge_frontier_sizes[0], 1);
        assert_eq!(out.edge_frontier_sizes[2], 2);
    }

    #[test]
    fn isolated_root_is_trivial() {
        let g = Csr::from_undirected_edges(4, [(1, 2)]);
        let device = DeviceConfig::gtx_titan();
        let mut ws = SearchWorkspace::new(4);
        let mut bc = vec![0.0; 4];
        let out = process_root(&g, 0, &device, &mut ws, &mut FreeModel, &mut bc);
        assert_eq!(out.max_depth, 0);
        assert_eq!(out.reached, 1);
        assert!(bc.iter().all(|&b| b == 0.0));
    }

    #[test]
    fn workspace_exposes_search_state() {
        let g = gen::path(4);
        let device = DeviceConfig::gtx_titan();
        let mut ws = SearchWorkspace::new(4);
        let mut bc = vec![0.0; 4];
        process_root(&g, 0, &device, &mut ws, &mut FreeModel, &mut bc);
        assert_eq!(ws.dist(), &[0, 1, 2, 3]);
        assert_eq!(ws.sigma(), &[1.0, 1.0, 1.0, 1.0]);
        // δ along a path: δ(1) from successors 2,3...
        assert!(ws.delta()[1] > ws.delta()[2]);
    }

    #[test]
    fn sweep_reset_matches_fresh_workspace() {
        // Two components: searches from the small component must not
        // see stale state left by the big one (and vice versa).
        let g = Csr::from_undirected_edges(7, [(0, 1), (1, 2), (2, 3), (3, 0), (5, 6)]);
        let device = DeviceConfig::gtx_titan();
        let mut reused = SearchWorkspace::new(7);
        for r in [0u32, 5, 4, 1, 6] {
            let mut bc_reused = vec![0.0; 7];
            let mut bc_fresh = vec![0.0; 7];
            let out_reused =
                process_root(&g, r, &device, &mut reused, &mut FreeModel, &mut bc_reused);
            let mut fresh = SearchWorkspace::new(7);
            let out_fresh = process_root(&g, r, &device, &mut fresh, &mut FreeModel, &mut bc_fresh);
            assert_eq!(bc_reused, bc_fresh, "root {r}");
            assert_eq!(out_reused.reached, out_fresh.reached);
            assert_eq!(reused.dist(), fresh.dist());
            assert_eq!(reused.sigma(), fresh.sigma());
        }
    }

    #[test]
    fn root_outcome_reset_clears_traces() {
        let g = gen::path(5);
        let device = DeviceConfig::gtx_titan();
        let mut ws = SearchWorkspace::new(5);
        let mut bc = vec![0.0; 5];
        let mut out = RootOutcome::default();
        let ctx = |root| RootContext {
            g: &g,
            root,
            device: &device,
        };
        process_root_into(&ctx(0), &mut ws, &mut FreeModel, &mut bc, &mut out);
        assert_eq!(out.reached, 5);
        process_root_into(&ctx(4), &mut ws, &mut FreeModel, &mut bc, &mut out);
        assert_eq!(out.frontier_sizes.len(), 5);
        assert_eq!(out.reached, 5);
        assert_eq!(out.forward_traversals.len(), out.frontier_sizes.len());
        assert_eq!(out.pull_levels(), 0, "default models never pull");
    }

    /// Forces every forward level to run bottom-up (prices nothing).
    struct AlwaysPull;

    impl CostModel for AlwaysPull {
        fn price(&mut self, _g: &Csr, _d: &DeviceConfig, _l: &LevelInfo<'_>) -> PricedIteration {
            PricedIteration::default()
        }
        fn choose_traversal(
            &mut self,
            _g: &Csr,
            _d: &DeviceConfig,
            _f: &FrontierSnapshot,
        ) -> Traversal {
            Traversal::Pull
        }
    }

    #[test]
    fn pull_levels_are_bitwise_identical_to_push() {
        let device = DeviceConfig::gtx_titan();
        for g in [
            gen::path(12),
            gen::star(9),
            gen::grid(7, 5),
            gen::cycle(9),
            gen::erdos_renyi(80, 200, 3),
            Csr::from_undirected_edges(7, [(0, 1), (1, 2), (2, 3), (3, 0), (5, 6)]),
        ] {
            for root in [0u32, (g.num_vertices() as u32).saturating_sub(1)] {
                let n = g.num_vertices();
                let (mut push_ws, mut pull_ws) = (SearchWorkspace::new(n), SearchWorkspace::new(n));
                let mut push_bc = vec![0.0; n];
                let mut pull_bc = vec![0.0; n];
                let push_out = process_root(
                    &g,
                    root,
                    &device,
                    &mut push_ws,
                    &mut FreeModel,
                    &mut push_bc,
                );
                let pull_out = process_root(
                    &g,
                    root,
                    &device,
                    &mut pull_ws,
                    &mut AlwaysPull,
                    &mut pull_bc,
                );
                assert_eq!(push_ws.dist(), pull_ws.dist(), "root {root}");
                assert_eq!(push_ws.sigma(), pull_ws.sigma(), "root {root}");
                assert_eq!(push_ws.stack(), pull_ws.stack(), "root {root}");
                assert_eq!(push_ws.ends(), pull_ws.ends(), "root {root}");
                assert_eq!(push_ws.delta(), pull_ws.delta(), "root {root}");
                assert_eq!(push_bc, pull_bc, "root {root}");
                assert_eq!(push_out.max_depth, pull_out.max_depth);
                assert_eq!(push_out.frontier_sizes, pull_out.frontier_sizes);
                assert_eq!(push_out.edge_frontier_sizes, pull_out.edge_frontier_sizes);
                // Every forward level of a reachable search pulled.
                if pull_out.max_depth > 0 {
                    assert!(pull_out.pull_levels() > 0);
                }
            }
        }
    }

    #[test]
    fn metrics_records_mirror_the_search() {
        use bc_metrics::MetricsRecorder;
        let g = gen::erdos_renyi(80, 200, 11);
        let device = DeviceConfig::gtx_titan();
        let mut ws = SearchWorkspace::new(g.num_vertices());
        let mut bc = vec![0.0; g.num_vertices()];
        let mut out = RootOutcome::default();
        let mut rec = MetricsRecorder::default();
        process_root_observed(
            &RootContext {
                g: &g,
                root: 0,
                device: &device,
            },
            &mut ws,
            &mut FreeModel,
            &mut bc,
            &mut out,
            &mut NullSink,
            &mut rec,
        );
        assert_eq!(rec.roots.len(), 1);
        let root = &rec.roots[0];
        assert_eq!(root.root, 0);
        assert_eq!(root.forward_levels(), out.frontier_sizes.len());
        assert_eq!(root.max_depth(), out.max_depth);
        let forward: Vec<_> = root
            .levels
            .iter()
            .filter(|l| l.phase == bc_metrics::MetricPhase::Forward)
            .collect();
        // Q_curr per level is the frontier trace; discoveries cover
        // everything reached except the root itself.
        let q_currs: Vec<u64> = forward.iter().map(|l| l.q_curr).collect();
        let sizes: Vec<u64> = out.frontier_sizes.iter().map(|&s| s as u64).collect();
        assert_eq!(q_currs, sizes);
        let discovered: u64 = forward.iter().map(|l| l.q_next).sum();
        assert_eq!(discovered, out.reached as u64 - 1);
        // Push levels attempt one CAS per inspected edge and win one
        // per discovery; the level seconds are the priced trace.
        for (l, (&edges, &secs)) in forward.iter().zip(
            out.edge_frontier_sizes
                .iter()
                .zip(&out.forward_level_seconds),
        ) {
            assert_eq!(l.edges_inspected, edges);
            assert_eq!(l.cas_attempts, edges);
            assert_eq!(l.cas_wins, l.q_next);
            assert_eq!(l.seconds, secs);
        }
        assert_eq!(forward[0].switch, Some(bc_metrics::SwitchReason::Start));
        // Backward levels carry no CAS and no switch.
        for l in root
            .levels
            .iter()
            .filter(|l| l.phase == bc_metrics::MetricPhase::Backward)
        {
            assert_eq!(l.cas_attempts, 0);
            assert_eq!(l.q_next, 0);
            assert!(l.switch.is_none());
        }
    }

    #[test]
    fn ends_segments_match_bfs_levels() {
        let g = gen::star(5);
        let device = DeviceConfig::gtx_titan();
        let mut ws = SearchWorkspace::new(5);
        let mut bc = vec![0.0; 5];
        let out = process_root(&g, 0, &device, &mut ws, &mut FreeModel, &mut bc);
        assert_eq!(out.frontier_sizes, vec![1, 4]);
        assert_eq!(out.max_depth, 1);
    }
}
