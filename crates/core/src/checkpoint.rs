//! Durable checkpoint store for per-root dependency contributions.
//!
//! Long cluster runs stream each completed root's contribution vector
//! to an epoch-stamped, checksummed chunk file under a checkpoint
//! directory. A small text manifest records the graph digest, an
//! options fingerprint (method / traversal / schedule / partition /
//! topology), the current epoch, and the completed-root set. Resume
//! opens the same directory, validates the fingerprint, skips every
//! completed root, and replays the stored chunks through the same
//! root-ordered merger the live workers feed — so an
//! interrupted-then-resumed run is bitwise identical to an
//! uninterrupted one.
//!
//! Layout on disk:
//!
//! ```text
//! DIR/manifest.txt      hand-parsed text (see [`CheckpointStore::open`])
//! DIR/root-<idx>.chunk  binary chunk, magic "HBCCHK01", FNV-1a trailer
//! ```
//!
//! Every write goes through a temp file + rename so a crash mid-write
//! leaves either the old state or the new state, never a torn file.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use bc_graph::Csr;

/// Magic bytes opening every chunk file.
const CHUNK_MAGIC: &[u8; 8] = b"HBCCHK01";
/// First line of the manifest.
const MANIFEST_HEADER: &str = "hybrid-bc-checkpoint 1";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a over a byte stream.
#[derive(Clone, Copy, Debug)]
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Self(FNV_OFFSET)
    }

    fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// FNV-1a digest of a CSR graph: vertex count, offsets, adjacency,
/// and symmetry flag. Two graphs with the same digest are treated as
/// interchangeable by the checkpoint store.
#[must_use]
pub fn graph_digest(g: &Csr) -> u64 {
    let mut h = Fnv1a::new();
    h.update(&(g.num_vertices() as u64).to_le_bytes());
    for &o in g.offsets() {
        h.update(&o.to_le_bytes());
    }
    for &v in g.adj_array() {
        h.update(&v.to_le_bytes());
    }
    h.update(&[u8::from(g.is_symmetric())]);
    h.finish()
}

/// FNV-1a digest of a canonical options description string.
///
/// Callers render every option that affects the numeric result
/// (method, traversal, schedule, partition mode, topology, root
/// count) into one `key=value` string; any difference in that string
/// makes resume refuse the directory.
#[must_use]
pub fn options_fingerprint(desc: &str) -> u64 {
    let mut h = Fnv1a::new();
    h.update(desc.as_bytes());
    h.finish()
}

/// Errors surfaced by the checkpoint store. Every variant carries
/// enough context to name the offending file and what went wrong.
#[derive(Debug)]
pub enum CheckpointError {
    /// An underlying filesystem operation failed.
    Io {
        /// Path the operation touched.
        path: PathBuf,
        /// What the store was doing (e.g. "create checkpoint dir").
        context: &'static str,
        /// The OS error.
        source: std::io::Error,
    },
    /// A chunk or manifest exists but its bytes are damaged.
    Corrupt {
        /// Path of the damaged file.
        path: PathBuf,
        /// Human-readable description of the damage.
        detail: String,
    },
    /// The directory belongs to a different run configuration.
    Mismatch {
        /// Which field disagreed ("fingerprint", "graph", ...).
        what: &'static str,
        /// Value recorded in the manifest.
        expected: String,
        /// Value of the current run.
        found: String,
    },
    /// A chunk's epoch stamp disagrees with the manifest — the chunk
    /// is left over from an earlier incarnation and must not be
    /// replayed.
    Stale {
        /// Root index of the stale chunk.
        root: usize,
        /// Epoch stamped inside the chunk file.
        chunk_epoch: u64,
        /// Epoch the manifest recorded for this root.
        expected_epoch: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io {
                path,
                context,
                source,
            } => write!(f, "checkpoint io: {context} {}: {source}", path.display()),
            Self::Corrupt { path, detail } => {
                write!(f, "checkpoint corrupt: {}: {detail}", path.display())
            }
            Self::Mismatch {
                what,
                expected,
                found,
            } => write!(
                f,
                "checkpoint mismatch: {what} was {expected}, run has {found}"
            ),
            Self::Stale {
                root,
                chunk_epoch,
                expected_epoch,
            } => write!(
                f,
                "checkpoint stale: root {root} chunk stamped epoch {chunk_epoch}, \
                 manifest expects {expected_epoch}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

fn ioerr(path: &Path, context: &'static str, source: std::io::Error) -> CheckpointError {
    CheckpointError::Io {
        path: path.to_path_buf(),
        context,
        source,
    }
}

/// Metadata the manifest records for one completed root.
#[derive(Clone, Copy, Debug)]
struct ChunkMeta {
    /// Epoch the chunk was written under.
    epoch: u64,
    /// FNV-1a checksum of the contribution vector's `f64` bits.
    checksum: u64,
}

#[derive(Debug)]
struct ManifestState {
    completed: Vec<Option<ChunkMeta>>,
}

/// On-disk checkpoint store for one (graph, options) run.
///
/// Thread-safe: workers call [`CheckpointStore::record`] concurrently;
/// each call writes its chunk and atomically rewrites the manifest
/// under an internal lock.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    vertices: usize,
    fingerprint: u64,
    graph: u64,
    epoch: u64,
    state: Mutex<ManifestState>,
}

impl CheckpointStore {
    /// Open (or create) a checkpoint directory for a run over
    /// `num_roots` roots on a graph with `vertices` vertices.
    ///
    /// If a manifest already exists it must match `fingerprint`,
    /// `graph`, `vertices`, and `num_roots` exactly; completed roots
    /// recorded there become visible through
    /// [`CheckpointStore::completed`]. Each successful open bumps the
    /// epoch, so chunks written by abandoned incarnations are
    /// detectable as stale.
    pub fn open(
        dir: &Path,
        fingerprint: u64,
        graph: u64,
        vertices: usize,
        num_roots: usize,
    ) -> Result<Self, CheckpointError> {
        fs::create_dir_all(dir).map_err(|e| ioerr(dir, "create checkpoint dir", e))?;
        let manifest = dir.join("manifest.txt");
        let mut completed: Vec<Option<ChunkMeta>> = vec![None; num_roots];
        let mut epoch = 0u64;
        match fs::read_to_string(&manifest) {
            Ok(text) => {
                let parsed = parse_manifest(&manifest, &text)?;
                check_match("fingerprint", parsed.fingerprint, fingerprint)?;
                check_match("graph", parsed.graph, graph)?;
                if parsed.vertices != vertices as u64 {
                    return Err(CheckpointError::Mismatch {
                        what: "vertices",
                        expected: parsed.vertices.to_string(),
                        found: vertices.to_string(),
                    });
                }
                if parsed.roots != num_roots as u64 {
                    return Err(CheckpointError::Mismatch {
                        what: "roots",
                        expected: parsed.roots.to_string(),
                        found: num_roots.to_string(),
                    });
                }
                epoch = parsed.epoch;
                for (idx, meta) in parsed.done {
                    if idx >= num_roots {
                        return Err(CheckpointError::Corrupt {
                            path: manifest.clone(),
                            detail: format!("done index {idx} out of range ({num_roots} roots)"),
                        });
                    }
                    completed[idx] = Some(meta);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                return Err(CheckpointError::Corrupt {
                    path: manifest.clone(),
                    detail: "manifest is not valid UTF-8".into(),
                })
            }
            Err(e) => return Err(ioerr(&manifest, "read manifest", e)),
        }
        let store = Self {
            dir: dir.to_path_buf(),
            vertices,
            fingerprint,
            graph,
            epoch: epoch + 1,
            state: Mutex::new(ManifestState { completed }),
        };
        {
            let state = store.state.lock().expect("checkpoint lock poisoned");
            store.write_manifest(&state)?;
        }
        Ok(store)
    }

    /// Which roots already have a recorded contribution, in root-index
    /// order.
    #[must_use]
    pub fn completed(&self) -> Vec<bool> {
        let state = self.state.lock().expect("checkpoint lock poisoned");
        state.completed.iter().map(Option::is_some).collect()
    }

    /// Epoch of the current incarnation (1 for a fresh directory).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Record root `idx`'s completed contribution vector.
    ///
    /// The chunk lands on disk (temp file + rename) before the
    /// manifest marks the root done, so a crash between the two leaves
    /// the root merely unrecorded, never recorded-but-missing.
    pub fn record(&self, idx: usize, scores: &[f64]) -> Result<(), CheckpointError> {
        let path = self.chunk_path(idx);
        let mut body = Vec::with_capacity(40 + scores.len() / 8);
        body.extend_from_slice(CHUNK_MAGIC);
        body.extend_from_slice(&self.epoch.to_le_bytes());
        body.extend_from_slice(&(idx as u64).to_le_bytes());
        body.extend_from_slice(&(scores.len() as u64).to_le_bytes());
        let nonzero: Vec<(u32, f64)> = scores
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s != 0.0)
            .map(|(v, &s)| (v as u32, s))
            .collect();
        body.extend_from_slice(&(nonzero.len() as u64).to_le_bytes());
        for &(v, s) in &nonzero {
            body.extend_from_slice(&v.to_le_bytes());
            body.extend_from_slice(&s.to_bits().to_le_bytes());
        }
        let mut h = Fnv1a::new();
        h.update(&body);
        body.extend_from_slice(&h.finish().to_le_bytes());
        write_atomic(&path, &body)?;

        let meta = ChunkMeta {
            epoch: self.epoch,
            checksum: vector_checksum(scores),
        };
        let mut state = self.state.lock().expect("checkpoint lock poisoned");
        state.completed[idx] = Some(meta);
        self.write_manifest(&state)
    }

    /// Load root `idx`'s stored contribution vector, verifying the
    /// chunk's magic, identity, epoch stamp, and checksum.
    pub fn load(&self, idx: usize) -> Result<Vec<f64>, CheckpointError> {
        let expected = {
            let state = self.state.lock().expect("checkpoint lock poisoned");
            state.completed.get(idx).copied().flatten()
        };
        let Some(meta) = expected else {
            return Err(CheckpointError::Corrupt {
                path: self.chunk_path(idx),
                detail: format!("root {idx} not recorded in manifest"),
            });
        };
        let path = self.chunk_path(idx);
        let mut file = fs::File::open(&path).map_err(|e| ioerr(&path, "open chunk", e))?;
        let mut body = Vec::new();
        file.read_to_end(&mut body)
            .map_err(|e| ioerr(&path, "read chunk", e))?;
        let corrupt = |detail: String| CheckpointError::Corrupt {
            path: path.clone(),
            detail,
        };
        if body.len() < CHUNK_MAGIC.len() + 8 * 4 + 8 {
            return Err(corrupt(format!("chunk truncated at {} bytes", body.len())));
        }
        let (payload, trailer) = body.split_at(body.len() - 8);
        let mut h = Fnv1a::new();
        h.update(payload);
        let stored = u64::from_le_bytes(trailer.try_into().expect("split_at gave 8 bytes"));
        if h.finish() != stored {
            return Err(corrupt("chunk checksum mismatch".into()));
        }
        if &payload[..8] != CHUNK_MAGIC {
            return Err(corrupt("bad chunk magic".into()));
        }
        let word = |i: usize| {
            u64::from_le_bytes(
                payload[8 + 8 * i..16 + 8 * i]
                    .try_into()
                    .expect("bounds checked above"),
            )
        };
        let chunk_epoch = word(0);
        if chunk_epoch != meta.epoch {
            return Err(CheckpointError::Stale {
                root: idx,
                chunk_epoch,
                expected_epoch: meta.epoch,
            });
        }
        if word(1) != idx as u64 {
            return Err(corrupt(format!(
                "chunk stamped for root {}, expected {idx}",
                word(1)
            )));
        }
        let n = word(2);
        if n != self.vertices as u64 {
            return Err(corrupt(format!(
                "chunk has {n} vertices, graph has {}",
                self.vertices
            )));
        }
        let count = word(3) as usize;
        let entries = &payload[8 + 8 * 4..];
        if entries.len() != count * 12 {
            return Err(corrupt(format!(
                "chunk body is {} bytes for {count} entries",
                entries.len()
            )));
        }
        let mut scores = vec![0.0f64; self.vertices];
        for e in entries.chunks_exact(12) {
            let v = u32::from_le_bytes(e[..4].try_into().expect("chunk of 12")) as usize;
            let bits = u64::from_le_bytes(e[4..].try_into().expect("chunk of 12"));
            if v >= self.vertices {
                return Err(corrupt(format!("entry vertex {v} out of range")));
            }
            scores[v] = f64::from_bits(bits);
        }
        if vector_checksum(&scores) != meta.checksum {
            return Err(corrupt("manifest checksum mismatch".into()));
        }
        Ok(scores)
    }

    fn chunk_path(&self, idx: usize) -> PathBuf {
        self.dir.join(format!("root-{idx}.chunk"))
    }

    fn write_manifest(&self, state: &ManifestState) -> Result<(), CheckpointError> {
        let mut text = String::new();
        text.push_str(MANIFEST_HEADER);
        text.push('\n');
        text.push_str(&format!("fingerprint {:016x}\n", self.fingerprint));
        text.push_str(&format!("graph {:016x}\n", self.graph));
        text.push_str(&format!("vertices {}\n", self.vertices));
        text.push_str(&format!("roots {}\n", state.completed.len()));
        text.push_str(&format!("epoch {}\n", self.epoch));
        for (idx, meta) in state.completed.iter().enumerate() {
            if let Some(m) = meta {
                text.push_str(&format!("done {idx} {} {:016x}\n", m.epoch, m.checksum));
            }
        }
        write_atomic(&self.dir.join("manifest.txt"), text.as_bytes())
    }
}

/// FNV-1a over the little-endian bit patterns of a score vector —
/// same convention as the cluster reduce checksum.
fn vector_checksum(scores: &[f64]) -> u64 {
    let mut h = Fnv1a::new();
    for &s in scores {
        h.update(&s.to_bits().to_le_bytes());
    }
    h.finish()
}

fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp).map_err(|e| ioerr(&tmp, "create temp file", e))?;
        f.write_all(bytes)
            .map_err(|e| ioerr(&tmp, "write temp file", e))?;
        f.sync_all().map_err(|e| ioerr(&tmp, "sync temp file", e))?;
    }
    fs::rename(&tmp, path).map_err(|e| ioerr(path, "rename into place", e))
}

struct ParsedManifest {
    fingerprint: u64,
    graph: u64,
    vertices: u64,
    roots: u64,
    epoch: u64,
    done: BTreeMap<usize, ChunkMeta>,
}

fn check_match(what: &'static str, expected: u64, found: u64) -> Result<(), CheckpointError> {
    if expected != found {
        return Err(CheckpointError::Mismatch {
            what,
            expected: format!("{expected:016x}"),
            found: format!("{found:016x}"),
        });
    }
    Ok(())
}

/// Hand-rolled parse of the text manifest (the vendored serde stack
/// only serializes, so the manifest is a line-oriented format parsed
/// here directly).
fn parse_manifest(path: &Path, text: &str) -> Result<ParsedManifest, CheckpointError> {
    let corrupt = |detail: String| CheckpointError::Corrupt {
        path: path.to_path_buf(),
        detail,
    };
    let mut lines = text.lines();
    if lines.next() != Some(MANIFEST_HEADER) {
        return Err(corrupt("bad manifest header".into()));
    }
    let mut fingerprint = None;
    let mut graph = None;
    let mut vertices = None;
    let mut roots = None;
    let mut epoch = None;
    let mut done = BTreeMap::new();
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        let key = parts.next().unwrap_or("");
        let fields: Vec<&str> = parts.collect();
        let one = || -> Result<&str, CheckpointError> {
            if fields.len() == 1 {
                Ok(fields[0])
            } else {
                Err(corrupt(format!("malformed manifest line: {line:?}")))
            }
        };
        match key {
            "fingerprint" => {
                fingerprint = Some(
                    u64::from_str_radix(one()?, 16)
                        .map_err(|e| corrupt(format!("bad fingerprint: {e}")))?,
                );
            }
            "graph" => {
                graph = Some(
                    u64::from_str_radix(one()?, 16)
                        .map_err(|e| corrupt(format!("bad graph digest: {e}")))?,
                );
            }
            "vertices" => {
                vertices = Some(
                    one()?
                        .parse::<u64>()
                        .map_err(|e| corrupt(format!("bad vertex count: {e}")))?,
                );
            }
            "roots" => {
                roots = Some(
                    one()?
                        .parse::<u64>()
                        .map_err(|e| corrupt(format!("bad root count: {e}")))?,
                );
            }
            "epoch" => {
                epoch = Some(
                    one()?
                        .parse::<u64>()
                        .map_err(|e| corrupt(format!("bad epoch: {e}")))?,
                );
            }
            "done" => {
                if fields.len() != 3 {
                    return Err(corrupt(format!("malformed done line: {line:?}")));
                }
                let idx = fields[0]
                    .parse::<usize>()
                    .map_err(|e| corrupt(format!("bad done index: {e}")))?;
                let ep = fields[1]
                    .parse::<u64>()
                    .map_err(|e| corrupt(format!("bad done epoch: {e}")))?;
                let checksum = u64::from_str_radix(fields[2], 16)
                    .map_err(|e| corrupt(format!("bad done checksum: {e}")))?;
                done.insert(
                    idx,
                    ChunkMeta {
                        epoch: ep,
                        checksum,
                    },
                );
            }
            _ => return Err(corrupt(format!("unknown manifest key {key:?}"))),
        }
    }
    Ok(ParsedManifest {
        fingerprint: fingerprint.ok_or_else(|| corrupt("manifest missing fingerprint".into()))?,
        graph: graph.ok_or_else(|| corrupt("manifest missing graph digest".into()))?,
        vertices: vertices.ok_or_else(|| corrupt("manifest missing vertices".into()))?,
        roots: roots.ok_or_else(|| corrupt("manifest missing roots".into()))?,
        epoch: epoch.ok_or_else(|| corrupt("manifest missing epoch".into()))?,
        done,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let id = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("bc-checkpoint-{tag}-{}-{id}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn record_load_round_trips_bitwise() {
        let dir = temp_dir("roundtrip");
        let store = CheckpointStore::open(&dir, 7, 9, 5, 3).expect("open");
        let scores = vec![0.0, 1.5, 0.0, -2.25, 1e-300];
        store.record(1, &scores).expect("record");
        let back = store.load(1).expect("load");
        assert_eq!(
            back.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_sees_completed_roots_and_bumps_epoch() {
        let dir = temp_dir("resume");
        {
            let store = CheckpointStore::open(&dir, 7, 9, 4, 4).expect("open");
            assert_eq!(store.epoch(), 1);
            store.record(0, &[1.0, 0.0, 0.0, 0.0]).expect("record");
            store.record(2, &[0.0, 0.0, 3.0, 0.0]).expect("record");
        }
        let store = CheckpointStore::open(&dir, 7, 9, 4, 4).expect("reopen");
        assert_eq!(store.epoch(), 2);
        assert_eq!(store.completed(), vec![true, false, true, false]);
        assert_eq!(store.load(2).expect("load")[2], 3.0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_mismatch_is_rejected() {
        let dir = temp_dir("mismatch");
        drop(CheckpointStore::open(&dir, 7, 9, 4, 4).expect("open"));
        let err = CheckpointStore::open(&dir, 8, 9, 4, 4).expect_err("must reject");
        assert!(matches!(
            err,
            CheckpointError::Mismatch {
                what: "fingerprint",
                ..
            }
        ));
        let err = CheckpointStore::open(&dir, 7, 10, 4, 4).expect_err("must reject");
        assert!(matches!(
            err,
            CheckpointError::Mismatch { what: "graph", .. }
        ));
        let err = CheckpointStore::open(&dir, 7, 9, 4, 5).expect_err("must reject");
        assert!(matches!(
            err,
            CheckpointError::Mismatch { what: "roots", .. }
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_chunk_is_rejected() {
        let dir = temp_dir("corrupt");
        let store = CheckpointStore::open(&dir, 7, 9, 4, 4).expect("open");
        store.record(1, &[0.0, 2.0, 0.0, 4.0]).expect("record");
        let path = dir.join("root-1.chunk");
        let mut bytes = fs::read(&path).expect("read chunk");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).expect("rewrite chunk");
        let err = store.load(1).expect_err("must reject");
        assert!(matches!(err, CheckpointError::Corrupt { .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_chunk_from_old_epoch_is_flagged() {
        let dir = temp_dir("stale");
        let old_bytes;
        {
            let store = CheckpointStore::open(&dir, 7, 9, 4, 4).expect("open");
            store.record(1, &[0.0, 2.0, 0.0, 0.0]).expect("record");
            old_bytes = fs::read(dir.join("root-1.chunk")).expect("read chunk");
        }
        let store = CheckpointStore::open(&dir, 7, 9, 4, 4).expect("reopen");
        store.record(1, &[0.0, 5.0, 0.0, 0.0]).expect("re-record");
        // A crashed old incarnation's chunk reappears over the fresh one.
        fs::write(dir.join("root-1.chunk"), &old_bytes).expect("overwrite");
        let err = store.load(1).expect_err("must flag stale");
        assert!(
            matches!(
                err,
                CheckpointError::Stale {
                    root: 1,
                    chunk_epoch: 1,
                    expected_epoch: 2,
                }
            ),
            "{err}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_manifest_is_rejected_not_panicking() {
        let dir = temp_dir("garbage");
        fs::create_dir_all(&dir).expect("mkdir");
        fs::write(dir.join("manifest.txt"), b"not a manifest\x00\xff").expect("write");
        let err = CheckpointStore::open(&dir, 7, 9, 4, 4).expect_err("must reject");
        assert!(matches!(err, CheckpointError::Corrupt { .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn digests_are_order_sensitive() {
        let a = options_fingerprint("method=bc traversal=push");
        let b = options_fingerprint("method=bc traversal=pull");
        assert_ne!(a, b);
        let g1 = bc_graph::gen::watts_strogatz(64, 4, 0.1, 1);
        let g2 = bc_graph::gen::watts_strogatz(64, 4, 0.1, 2);
        assert_ne!(graph_digest(&g1), graph_digest(&g2));
        assert_eq!(graph_digest(&g1), graph_digest(&g1));
    }
}
