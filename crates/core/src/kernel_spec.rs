//! Symbolic access specifications for the engine's simulated kernels
//! (the kernel IR).
//!
//! The trace layer ([`bc_gpusim::trace`]) records what one *run* did;
//! this module declares what every run **may** do: each simulated
//! kernel of [`crate::engine`] — frontier dedup, push forward,
//! frontier compaction, pull forward, backward sweep — is described
//! as a set of
//! [`AccessSpec`]s, each naming an array, an access flavor, a
//! symbolic [`IndexExpr`] over the executing lane, and the BFS
//! [`SegmentClass`] the touched cell is guaranteed to lie in.
//!
//! The specs are pure data. `bc-analyze` consumes them twice:
//!
//! * its **prover** abstract-interprets the index expressions to show
//!   that no plain write can collide with any other lane's access on
//!   *any* CSR and *any* frontier — turning the paper's "the
//!   successor-based dependency accumulation needs no atomics" from a
//!   per-run observation (the PR 2 race detector) into a theorem —
//!   and derives the minimal atomic set each kernel needs, which must
//!   equal the set [`priced_atomics`] declares (what the
//!   `bc_core::methods::cost` models actually charge);
//! * its **conformance pass** replays recorded traces against the
//!   specs, so the IR can never silently drift from the engine: every
//!   emitted event must be admitted by some spec, and every spec must
//!   be exercised by some event.
//!
//! The one non-local fact the proofs lean on is also declared here:
//! the dedup kernel's `atomicCAS` admits each vertex into `Q_next` at
//! most once, which is what makes "frontier vertices are pairwise
//! distinct" ([`Axiom::DistinctFrontier`]) available to every later
//! launch.

use bc_gpusim::trace::{AccessKind, KernelArray, TracePhase};

/// The five simulated kernels the engine launches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KernelId {
    /// Algorithm 2's deduplicating discovery: per inspected edge, an
    /// `atomicCAS` on `d`, then (for the winner) a queue-tail
    /// `atomicAdd` on `ends` and a store into the claimed `Q_next`
    /// slot.
    FrontierDedup,
    /// Algorithm 2's σ accumulation: the plain `d[w] == d[v]+1` check
    /// and the `atomicAdd(σ[w], σ[v])` of the same launch.
    PushForward,
    /// The compressed-frontier compaction that precedes a pull level
    /// after a direction switch: each `Q_curr` slot scatters its
    /// vertex into the hierarchical frontier bitmap — the leaf word
    /// (`F_curr`) and the 1024-vertex summary word (`F_sum`) — with
    /// word-granular `atomicOr`s. Steady-state pull levels skip it
    /// (the previous level's `F_next` is swapped in instead).
    FrontierCompact,
    /// The bottom-up (pull) forward sweep: unvisited vertices scan
    /// their own adjacency against the frontier bitmap; the owner
    /// alone writes its `d`/`σ`, announcing with one `atomicOr`.
    PullForward,
    /// Algorithm 3's successor-based dependency accumulation — the
    /// paper's atomic-free kernel.
    BackwardSweep,
}

impl KernelId {
    /// Every kernel, in launch order within one root.
    pub const ALL: [KernelId; 5] = [
        KernelId::FrontierDedup,
        KernelId::PushForward,
        KernelId::FrontierCompact,
        KernelId::PullForward,
        KernelId::BackwardSweep,
    ];

    /// Stable kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            KernelId::FrontierDedup => "frontier-dedup",
            KernelId::PushForward => "push-forward",
            KernelId::FrontierCompact => "frontier-compact",
            KernelId::PullForward => "pull-forward",
            KernelId::BackwardSweep => "backward-sweep",
        }
    }
}

impl std::fmt::Display for KernelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What a logical lane id means within a kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LaneKind {
    /// The lane is a position within the level's frontier segment
    /// (push forward, frontier dedup, backward sweep); the lane's
    /// *vertex* is `S[segment_start + lane]`.
    FrontierSlot,
    /// The lane *is* a vertex id — one lane per still-unvisited
    /// vertex (pull forward). [`IndexExpr::OwnWord`] accesses within
    /// such a kernel use a separate word-id lane space (the
    /// visited-bitmap scan); they are read-only by construction.
    UnvisitedVertex,
}

/// Symbolic index of one access, as a function of the executing lane.
///
/// This is the expression language of the IR: every index the engine
/// emits is one of these shapes, and the prover's alias analysis is a
/// pairwise decision procedure over them (see `bc-analyze`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IndexExpr {
    /// `segment_start + lane` — the lane's own queue/stack slot.
    /// Injective across lanes unconditionally.
    OwnSlot,
    /// A slot in the *next* queue segment claimed by an earlier
    /// queue-tail `atomicAdd`. Injective given
    /// [`Axiom::UniqueReservation`].
    ReservedSlot,
    /// The lane's own vertex. Injective given
    /// [`Axiom::DistinctFrontier`] (trivially injective for
    /// [`LaneKind::UnvisitedVertex`], where the lane *is* the
    /// vertex).
    OwnVertex,
    /// Any CSR neighbor of the lane's vertex. **Not** injective: two
    /// lanes may share a neighbor — this is exactly where atomics
    /// become necessary.
    NeighborOfOwn,
    /// `own_vertex / 32` — the lane's bitmap word. Not injective
    /// (vertices share words).
    OwnVertexWord,
    /// `own_vertex / 1024` — the lane's summary word in the
    /// compressed frontier's upper level (one bit covers 32 leaf
    /// words). Even less injective than [`IndexExpr::OwnVertexWord`]:
    /// 1024 vertices share a summary word.
    OwnVertexSummaryWord,
    /// `neighbor / 32` for any CSR neighbor. Not injective.
    NeighborWord,
    /// The lane *is* a bitmap word id and touches exactly that word
    /// (the pull kernel's visited-bitmap scan). Injective.
    OwnWord,
    /// The single shared queue-tail counter cell (`ends[depth + 1]`).
    /// Every lane targets the *same* cell.
    QueueTail,
}

/// Which BFS segment the touched cell is guaranteed to lie in, at the
/// granularity the array is indexed by.
///
/// For vertex-indexed arrays (`d`, `σ`, `δ`) the class constrains the
/// cell's BFS depth (`Current` = the level being processed, `Next` =
/// one deeper); for slot-indexed arrays (`Q_curr`/`Q_next`/`S`) it
/// constrains the queue segment the slot lies in. Since BFS depth is
/// a function (each vertex has exactly one depth, each slot lies in
/// exactly one segment), `Current` and `Next` cells are disjoint —
/// the [`Axiom::SegmentPartition`] the prover leans on for the
/// backward sweep's atomic-free proof.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SegmentClass {
    /// The cell belongs to the level being processed (depth `d`).
    Current,
    /// The cell belongs to the next level (depth `d + 1`).
    Next,
    /// No segment guarantee (e.g. a CAS probing arbitrary neighbors).
    Any,
}

impl SegmentClass {
    /// Can cells of `self` and `other` coincide?
    pub fn overlaps(self, other: SegmentClass) -> bool {
        self == SegmentClass::Any || other == SegmentClass::Any || self == other
    }
}

/// One declared access: array, flavor, symbolic index, segment class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AccessSpec {
    /// The kernel array touched.
    pub array: KernelArray,
    /// Read, plain write, or one of the atomics.
    pub kind: AccessKind,
    /// Symbolic cell index as a function of the lane.
    pub index: IndexExpr,
    /// Segment guarantee on the touched cell.
    pub segment: SegmentClass,
}

impl AccessSpec {
    const fn new(
        array: KernelArray,
        kind: AccessKind,
        index: IndexExpr,
        segment: SegmentClass,
    ) -> AccessSpec {
        AccessSpec {
            array,
            kind,
            index,
            segment,
        }
    }
}

impl std::fmt::Display for AccessSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?} {}[{:?}@{:?}]",
            self.kind,
            self.array.name(),
            self.index,
            self.segment
        )
    }
}

/// The full declaration of one kernel.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelSpec {
    /// Which kernel this declares.
    pub id: KernelId,
    /// What a lane id means.
    pub lane: LaneKind,
    /// Every access a lane may perform, in program order.
    pub accesses: Vec<AccessSpec>,
}

impl KernelSpec {
    /// The declared atomic accesses, as `(array, kind)` pairs.
    pub fn declared_atomics(&self) -> Vec<(KernelArray, AccessKind)> {
        self.accesses
            .iter()
            .filter(|a| a.kind.is_atomic())
            .map(|a| (a.array, a.kind))
            .collect()
    }
}

use AccessKind::{AtomicAdd, AtomicCas, AtomicOr, Read, Write};
use IndexExpr::{
    NeighborOfOwn, NeighborWord, OwnSlot, OwnVertex, OwnVertexSummaryWord, OwnVertexWord, OwnWord,
    QueueTail, ReservedSlot,
};
use SegmentClass::{Any, Current, Next};

/// The spec of one kernel — the IR the engine's emission sites are
/// held to (`bc-analyze`'s conformance pass) and proved safe from
/// (its prover).
pub fn kernel_spec(id: KernelId) -> KernelSpec {
    let (lane, accesses) = match id {
        // Lane = frontier slot. Per edge: CAS-dedup on d; winners bump
        // the queue tail and store into the claimed Q_next slot.
        KernelId::FrontierDedup => (
            LaneKind::FrontierSlot,
            vec![
                AccessSpec::new(KernelArray::QCurr, Read, OwnSlot, Current),
                AccessSpec::new(KernelArray::Dist, AtomicCas, NeighborOfOwn, Any),
                AccessSpec::new(KernelArray::Ends, AtomicAdd, QueueTail, Next),
                AccessSpec::new(KernelArray::QNext, Write, ReservedSlot, Next),
            ],
        ),
        // Lane = frontier slot. The plain d check and the σ
        // accumulation of the same launch.
        KernelId::PushForward => (
            LaneKind::FrontierSlot,
            vec![
                AccessSpec::new(KernelArray::Dist, Read, NeighborOfOwn, Any),
                AccessSpec::new(KernelArray::Sigma, Read, OwnVertex, Current),
                AccessSpec::new(KernelArray::Sigma, AtomicAdd, NeighborOfOwn, Next),
            ],
        ),
        // Lane = frontier slot. On a push→pull switch the sparse
        // Q_curr is expanded into the hierarchical frontier bitmap:
        // each lane reads its own queue slot and atomicOrs its
        // vertex's leaf and summary bits. Both targets are
        // word-shared (many frontier vertices per word), which is
        // exactly why both stores are atomic. A grid-wide sync
        // separates this compaction from the pull scan consuming the
        // bitmap within the same fused launch.
        KernelId::FrontierCompact => (
            LaneKind::FrontierSlot,
            vec![
                AccessSpec::new(KernelArray::QCurr, Read, OwnSlot, Current),
                AccessSpec::new(KernelArray::FrontierBits, AtomicOr, OwnVertexWord, Current),
                AccessSpec::new(
                    KernelArray::SummaryBits,
                    AtomicOr,
                    OwnVertexSummaryWord,
                    Current,
                ),
            ],
        ),
        // Lane = unvisited vertex (plus read-only word-id lanes for
        // the visited-bitmap scan). Discovery writes are owner-only;
        // the single shared-cell write is the word-granular atomicOr.
        KernelId::PullForward => (
            LaneKind::UnvisitedVertex,
            vec![
                AccessSpec::new(KernelArray::VisitedBits, Read, OwnWord, Any),
                AccessSpec::new(KernelArray::FrontierBits, Read, NeighborWord, Any),
                AccessSpec::new(KernelArray::Sigma, Read, NeighborOfOwn, Current),
                AccessSpec::new(KernelArray::Dist, Write, OwnVertex, Next),
                AccessSpec::new(KernelArray::Sigma, Write, OwnVertex, Next),
                AccessSpec::new(KernelArray::NextBits, AtomicOr, OwnVertexWord, Next),
            ],
        ),
        // Lane = stack slot of segment d. Successor reads live one
        // segment deeper than the lane's own δ store — the
        // segment-disjointness that makes the sweep atomic-free.
        KernelId::BackwardSweep => (
            LaneKind::FrontierSlot,
            vec![
                AccessSpec::new(KernelArray::Stack, Read, OwnSlot, Current),
                AccessSpec::new(KernelArray::Sigma, Read, OwnVertex, Current),
                AccessSpec::new(KernelArray::Dist, Read, NeighborOfOwn, Any),
                AccessSpec::new(KernelArray::Sigma, Read, NeighborOfOwn, Next),
                AccessSpec::new(KernelArray::Delta, Read, NeighborOfOwn, Next),
                AccessSpec::new(KernelArray::Delta, Write, OwnVertex, Current),
            ],
        ),
    };
    KernelSpec { id, lane, accesses }
}

/// All kernel specs, in [`KernelId::ALL`] order.
pub fn kernel_specs() -> Vec<KernelSpec> {
    KernelId::ALL.into_iter().map(kernel_spec).collect()
}

/// One simulated kernel *launch* — the unit the race model quantifies
/// over (everything within a launch is concurrent; launches are
/// separated by device-wide barriers).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LaunchId {
    /// A top-down forward level: [`KernelId::FrontierDedup`] and
    /// [`KernelId::PushForward`] execute fused in one launch.
    ForwardPush,
    /// A bottom-up forward level: [`KernelId::FrontierCompact`] (on
    /// rebuild levels) fused ahead of [`KernelId::PullForward`].
    ForwardPull,
    /// A dependency-accumulation level: [`KernelId::BackwardSweep`].
    Backward,
}

impl LaunchId {
    /// Every launch shape.
    pub const ALL: [LaunchId; 3] = [
        LaunchId::ForwardPush,
        LaunchId::ForwardPull,
        LaunchId::Backward,
    ];

    /// Stable kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            LaunchId::ForwardPush => "forward-push",
            LaunchId::ForwardPull => "forward-pull",
            LaunchId::Backward => "backward",
        }
    }

    /// The kernels fused into this launch.
    pub fn kernels(self) -> &'static [KernelId] {
        match self {
            LaunchId::ForwardPush => &[KernelId::FrontierDedup, KernelId::PushForward],
            LaunchId::ForwardPull => &[KernelId::FrontierCompact, KernelId::PullForward],
            LaunchId::Backward => &[KernelId::BackwardSweep],
        }
    }

    /// The trace phase whose levels this launch shape produces.
    pub fn phase(self) -> TracePhase {
        match self {
            LaunchId::ForwardPush | LaunchId::ForwardPull => TracePhase::Forward,
            LaunchId::Backward => TracePhase::Backward,
        }
    }
}

impl std::fmt::Display for LaunchId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The atomic set the cost models price for one kernel
/// (`bc_core::methods::cost`): the dedup CAS and queue-tail add, the
/// σ atomicAdd, the pull discovery's atomicOr — and, pointedly,
/// **nothing** for the backward sweep. `bc-analyze` requires its
/// independently derived minimal atomic set to equal this, so the
/// prover, the specs, and the pricing can never drift apart.
pub fn priced_atomics(id: KernelId) -> Vec<(KernelArray, AccessKind)> {
    match id {
        KernelId::FrontierDedup => vec![
            (KernelArray::Dist, AtomicCas),
            (KernelArray::Ends, AtomicAdd),
        ],
        KernelId::PushForward => vec![(KernelArray::Sigma, AtomicAdd)],
        KernelId::FrontierCompact => vec![
            (KernelArray::FrontierBits, AtomicOr),
            (KernelArray::SummaryBits, AtomicOr),
        ],
        KernelId::PullForward => vec![(KernelArray::NextBits, AtomicOr)],
        KernelId::BackwardSweep => Vec::new(),
    }
}

/// Axioms (established facts) a disjointness proof may invoke. The
/// prover reports which it used, so every proof's trust base is
/// explicit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Axiom {
    /// Each level's frontier/stack segment holds pairwise distinct
    /// vertices — discharged by [`KernelId::FrontierDedup`]'s CAS
    /// (each `d` cell leaves `∞` at most once, so each vertex is
    /// enqueued at most once).
    DistinctFrontier,
    /// BFS depth is a function: a vertex (or stack slot) belongs to
    /// exactly one segment, so `Current` and `Next` cells are
    /// disjoint.
    SegmentPartition,
    /// Queue-tail `atomicAdd` reservations return pairwise distinct
    /// `Q_next` slots.
    UniqueReservation,
}

impl Axiom {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Axiom::DistinctFrontier => "distinct-frontier",
            Axiom::SegmentPartition => "segment-partition",
            Axiom::UniqueReservation => "unique-reservation",
        }
    }
}

impl std::fmt::Display for Axiom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kernel_has_a_spec_with_accesses() {
        for id in KernelId::ALL {
            let spec = kernel_spec(id);
            assert_eq!(spec.id, id);
            assert!(!spec.accesses.is_empty(), "{id}");
            assert_eq!(KernelId::ALL.iter().filter(|k| **k == id).count(), 1);
        }
    }

    #[test]
    fn declared_atomics_match_priced_atomics() {
        // The declaration-level sanity half of the prover's check:
        // what each spec marks atomic is exactly what pricing charges.
        for id in KernelId::ALL {
            let mut declared = kernel_spec(id).declared_atomics();
            let mut priced = priced_atomics(id);
            declared.sort();
            declared.dedup();
            priced.sort();
            assert_eq!(declared, priced, "{id}");
        }
    }

    #[test]
    fn backward_sweep_declares_no_atomics() {
        let spec = kernel_spec(KernelId::BackwardSweep);
        assert!(spec.accesses.iter().all(|a| !a.kind.is_atomic()));
        assert!(priced_atomics(KernelId::BackwardSweep).is_empty());
    }

    #[test]
    fn launches_cover_all_kernels_exactly_once() {
        let mut seen: Vec<KernelId> = LaunchId::ALL
            .iter()
            .flat_map(|l| l.kernels().iter().copied())
            .collect();
        seen.sort();
        let mut all = KernelId::ALL.to_vec();
        all.sort();
        assert_eq!(seen, all);
        assert_eq!(LaunchId::ForwardPush.phase(), TracePhase::Forward);
        assert_eq!(LaunchId::Backward.phase(), TracePhase::Backward);
    }

    #[test]
    fn segment_overlap_table() {
        assert!(Any.overlaps(Current) && Current.overlaps(Any));
        assert!(Current.overlaps(Current));
        assert!(!Current.overlaps(Next));
        assert!(!Next.overlaps(Current));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(KernelId::BackwardSweep.name(), "backward-sweep");
        assert_eq!(KernelId::FrontierCompact.name(), "frontier-compact");
        assert_eq!(LaunchId::ForwardPull.to_string(), "forward-pull");
        assert_eq!(Axiom::DistinctFrontier.to_string(), "distinct-frontier");
    }
}
