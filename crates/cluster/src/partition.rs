//! Root partitioning across GPUs.
//!
//! The paper extends the algorithm "by distributing a subset of
//! roots to each GPU" (§V-D); the graph itself is replicated on
//! every device. A strided assignment keeps per-GPU work balanced
//! even when root costs vary by connected component.

use bc_graph::VertexId;

/// Assign roots to `num_workers` workers round-robin: worker `w`
/// gets roots `w, w + W, w + 2W, …`.
pub fn strided(roots: &[VertexId], num_workers: usize) -> Vec<Vec<VertexId>> {
    assert!(num_workers > 0);
    let mut parts = vec![Vec::with_capacity(roots.len() / num_workers + 1); num_workers];
    for (i, &r) in roots.iter().enumerate() {
        parts[i % num_workers].push(r);
    }
    parts
}

/// Assign roots in contiguous chunks (used by ablations comparing
/// distribution policies).
pub fn contiguous(roots: &[VertexId], num_workers: usize) -> Vec<Vec<VertexId>> {
    assert!(num_workers > 0);
    let per = roots.len().div_ceil(num_workers);
    let mut parts = Vec::with_capacity(num_workers);
    for w in 0..num_workers {
        let lo = (w * per).min(roots.len());
        let hi = ((w + 1) * per).min(roots.len());
        parts.push(roots[lo..hi].to_vec());
    }
    parts
}

/// How many conceptual roots (of `total`) worker `w` of `W` owns
/// under the strided policy — used when extrapolating sampled
/// per-root times to a full run.
pub fn strided_share(total: usize, worker: usize, num_workers: usize) -> usize {
    assert!(worker < num_workers);
    total / num_workers + usize::from(worker < total % num_workers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_balances() {
        let roots: Vec<u32> = (0..10).collect();
        let parts = strided(&roots, 3);
        assert_eq!(parts[0], vec![0, 3, 6, 9]);
        assert_eq!(parts[1], vec![1, 4, 7]);
        assert_eq!(parts[2], vec![2, 5, 8]);
    }

    #[test]
    fn contiguous_chunks() {
        let roots: Vec<u32> = (0..10).collect();
        let parts = contiguous(&roots, 3);
        assert_eq!(parts[0], vec![0, 1, 2, 3]);
        assert_eq!(parts[1], vec![4, 5, 6, 7]);
        assert_eq!(parts[2], vec![8, 9]);
    }

    #[test]
    fn partitions_cover_all_roots() {
        let roots: Vec<u32> = (0..97).collect();
        for parts in [strided(&roots, 7), contiguous(&roots, 7)] {
            let mut all: Vec<u32> = parts.into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(all, roots);
        }
    }

    #[test]
    fn share_matches_partition_sizes() {
        let roots: Vec<u32> = (0..100).collect();
        let parts = strided(&roots, 7);
        for (w, p) in parts.iter().enumerate() {
            assert_eq!(p.len(), strided_share(100, w, 7));
        }
    }

    #[test]
    fn more_workers_than_roots() {
        let roots: Vec<u32> = vec![1, 2];
        let parts = strided(&roots, 5);
        assert_eq!(parts.iter().filter(|p| !p.is_empty()).count(), 2);
    }
}
