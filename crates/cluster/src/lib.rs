//! # bc-cluster — multi-GPU / multi-node betweenness centrality
//!
//! The paper's §V-D substrate: root partitioning across GPUs
//! ([`partition`]), a Keeneland-like interconnect model ([`net`]),
//! threaded per-GPU execution with a final reduction ([`runner`]),
//! and strong-scaling sweeps ([`scaling`]) for Figure 6 / Table IV.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod net;
pub mod partition;
pub mod runner;
pub mod scaling;

pub use net::NetworkConfig;
pub use runner::{run_cluster, ClusterConfig, ClusterReport, ClusterRun};
pub use scaling::{efficiency, strong_scaling, ScalingPoint};
