//! # bc-cluster — multi-GPU / multi-node betweenness centrality
//!
//! The paper's §V-D substrate: root partitioning across GPUs
//! ([`partition`]), a Keeneland-like interconnect model ([`net`]),
//! threaded per-GPU execution with a final reduction ([`runner`]),
//! strong-scaling sweeps ([`scaling`]) for Figure 6 / Table IV, and a
//! deterministic fault-injection + fault-tolerance layer ([`fault`],
//! [`error`]) that keeps recoverable faulted runs bitwise identical
//! to fault-free ones.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod error;
pub mod fault;
pub mod net;
pub mod partition;
pub mod runner;
pub mod scaling;

pub use bc_core::Schedule;
pub use error::{ClusterError, GpuMemoryDiagnostic};
pub use fault::{score_checksum, FaultCounters, FaultKind, FaultPlan, ReduceFault};
pub use net::NetworkConfig;
pub use runner::{
    run_cluster, run_cluster_durable, run_cluster_durable_metered, run_cluster_with_faults,
    run_cluster_with_faults_metered, ClusterConfig, ClusterReport, ClusterRun, DurabilityOptions,
};
pub use scaling::{efficiency, strong_scaling, ScalingPoint};
