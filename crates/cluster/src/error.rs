//! Structured cluster-level failures.
//!
//! Anything that stops a cluster run from producing the full result
//! surfaces here — never as a process panic. Every variant that can
//! occur *after* work started carries the partial [`ClusterRun`]
//! (completed roots merged in root order, fault counters included),
//! so a 190-of-192-GPUs-survived run still hands back everything it
//! computed.

use crate::runner::ClusterRun;
use std::fmt;

/// Required-vs-available device memory for one GPU — the pre-flight
/// diagnostic that rejects a doomed configuration before any worker
/// spawns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GpuMemoryDiagnostic {
    /// Flat GPU index in the cluster.
    pub gpu: usize,
    /// Bytes the method needs resident (graph CSR + local state).
    pub required_bytes: u64,
    /// The device's global memory.
    pub available_bytes: u64,
}

/// Why a cluster run failed.
#[derive(Debug)]
pub enum ClusterError {
    /// The configuration cannot run at all (zero GPUs, invalid fault
    /// plan, …). Detected before any work starts.
    InvalidConfig {
        /// What is wrong.
        what: String,
    },
    /// The method's device footprint exceeds GPU memory — GPU-FAN's
    /// O(n²) fate at scale. Detected pre-flight; carries one
    /// diagnostic per GPU that cannot hold the run.
    InsufficientMemory {
        /// Method that was asked to run.
        method: String,
        /// Per-GPU required-vs-available breakdown.
        diagnostics: Vec<GpuMemoryDiagnostic>,
    },
    /// A worker thread died from a *genuine* (non-injected) panic;
    /// contained, with everything completed so far.
    WorkerPanicked {
        /// Flat GPU index whose worker panicked.
        gpu: usize,
        /// The panic payload, stringified.
        message: String,
        /// Results completed before (and alongside) the panic.
        partial: Box<ClusterRun>,
    },
    /// Every GPU in the cluster died; nobody is left to adopt the
    /// orphaned roots.
    AllGpusLost {
        /// The dead GPU indices.
        dead: Vec<usize>,
        /// Roots completed before the losses.
        completed_roots: usize,
        /// Scores of the completed roots, merged in root order.
        partial: Box<ClusterRun>,
    },
    /// One root exhausted its retry budget on every surviving GPU.
    RootFailed {
        /// The root vertex.
        root: u32,
        /// How many GPUs it was attempted on.
        gpus_tried: usize,
        /// The last injected error, rendered.
        last_error: String,
        /// Everything else that completed.
        partial: Box<ClusterRun>,
    },
    /// The cross-node reduction could not be completed (a tree level
    /// kept dropping/corrupting past the retransmission cap).
    ReduceFailed {
        /// Reduce-tree level that failed.
        depth: usize,
        /// Transmissions attempted at that level.
        attempts: u32,
        /// Node-local results that never reached the root rank.
        partial: Box<ClusterRun>,
    },
    /// The process died mid-run at a seeded kill point
    /// (`FaultPlan::kill_fraction`). Completed roots were streamed to
    /// the checkpoint store (when one is attached); rerunning the same
    /// configuration against the same `--checkpoint` directory resumes
    /// from them.
    ProcessKilled {
        /// Roots completed (and checkpointed) before the death.
        completed_roots: usize,
        /// Roots the full run would have processed.
        planned_roots: usize,
        /// Scores of the completed roots, merged in root order.
        partial: Box<ClusterRun>,
    },
    /// The checkpoint store rejected the run: unwritable directory,
    /// corrupt or stale chunk, or a manifest recorded under a
    /// different graph/options fingerprint.
    Checkpoint {
        /// The underlying store error.
        source: bc_core::CheckpointError,
    },
}

impl ClusterError {
    /// The partial result, when work had started before the failure.
    pub fn partial(&self) -> Option<&ClusterRun> {
        match self {
            ClusterError::InvalidConfig { .. }
            | ClusterError::InsufficientMemory { .. }
            | ClusterError::Checkpoint { .. } => None,
            ClusterError::WorkerPanicked { partial, .. }
            | ClusterError::AllGpusLost { partial, .. }
            | ClusterError::RootFailed { partial, .. }
            | ClusterError::ReduceFailed { partial, .. }
            | ClusterError::ProcessKilled { partial, .. } => Some(partial),
        }
    }
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::InvalidConfig { what } => {
                write!(f, "invalid cluster configuration: {what}")
            }
            ClusterError::InsufficientMemory {
                method,
                diagnostics,
            } => {
                write!(
                    f,
                    "method '{method}' does not fit device memory on {} GPU(s):",
                    diagnostics.len()
                )?;
                for d in diagnostics {
                    write!(
                        f,
                        " [gpu {} needs {} B, has {} B]",
                        d.gpu, d.required_bytes, d.available_bytes
                    )?;
                }
                Ok(())
            }
            ClusterError::WorkerPanicked { gpu, message, .. } => {
                write!(f, "worker for gpu {gpu} panicked: {message}")
            }
            ClusterError::AllGpusLost {
                dead,
                completed_roots,
                ..
            } => write!(
                f,
                "all {} GPU(s) lost mid-run ({completed_roots} root(s) completed before the losses)",
                dead.len()
            ),
            ClusterError::RootFailed {
                root,
                gpus_tried,
                last_error,
                ..
            } => write!(
                f,
                "root {root} failed on all {gpus_tried} surviving GPU(s); last error: {last_error}"
            ),
            ClusterError::ReduceFailed {
                depth, attempts, ..
            } => write!(
                f,
                "cross-node reduce failed at tree level {depth} after {attempts} transmission(s)"
            ),
            ClusterError::ProcessKilled {
                completed_roots,
                planned_roots,
                ..
            } => write!(
                f,
                "process killed mid-run: {completed_roots} of {planned_roots} root(s) \
                 completed; rerun with the same --checkpoint directory to resume"
            ),
            ClusterError::Checkpoint { source } => write!(f, "{source}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Checkpoint { source } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preflight_errors_have_no_partial() {
        let e = ClusterError::InvalidConfig {
            what: "zero GPUs".into(),
        };
        assert!(e.partial().is_none());
        assert!(format!("{e}").contains("zero GPUs"));
    }

    #[test]
    fn memory_diagnostics_render_per_gpu() {
        let e = ClusterError::InsufficientMemory {
            method: "gpu-fan".into(),
            diagnostics: vec![GpuMemoryDiagnostic {
                gpu: 2,
                required_bytes: 100,
                available_bytes: 60,
            }],
        };
        let s = format!("{e}");
        assert!(s.contains("gpu-fan"));
        assert!(s.contains("gpu 2"));
        assert!(s.contains("100 B"));
        assert!(s.contains("60 B"));
    }
}
