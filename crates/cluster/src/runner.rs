//! Multi-GPU / multi-node execution with fault tolerance.
//!
//! Mirrors the paper's §V-D setup: the graph is replicated on every
//! GPU, roots are distributed across GPUs, per-GPU scores are
//! accumulated node-locally, and node results are combined with one
//! `MPI_Reduce`. Each simulated GPU is driven by a real host thread
//! (the coarse-grained parallelism is genuinely executed), while the
//! timing comes from the per-GPU simulation plus the network model.
//!
//! # Fault tolerance
//!
//! Work is scheduled at **root granularity**: each root is one unit
//! of work that can be retried (capped exponential backoff), migrated
//! to another GPU after exhausting its retry budget, or adopted by a
//! survivor when its GPU dies mid-run (priced as re-setup plus graph
//! re-upload through the network model). Because the injected fault
//! schedule ([`FaultPlan`]) is a pure function of its seed, the
//! entire schedule — deaths, retries, migrations — is precomputed
//! before any worker spawns, and the executed run replays it exactly.
//!
//! Scores are merged in **global root order** regardless of which GPU
//! computed each root, so any *recoverable* fault schedule produces
//! scores bitwise identical to the fault-free run (and to runs at any
//! other node count). Unrecoverable schedules surface as a structured
//! [`ClusterError`] carrying the partial result — never as a process
//! panic: injected worker deaths and genuine worker panics alike are
//! contained with `catch_unwind`.

use crate::error::{ClusterError, GpuMemoryDiagnostic};
use crate::fault::{score_checksum, FaultCounters, FaultKind, FaultPlan, ReduceFault};
use crate::net::NetworkConfig;
use bc_core::approx::{error_bound, DEGRADED_SAMPLE_SOURCES};
use bc_core::methods::cost::footprint;
use bc_core::{
    graph_digest, options_fingerprint, plan_assignment, BcOptions, CheckpointError,
    CheckpointStore, Degradation, Method, PartitionMode, PartitionPlan, RootSelection, Schedule,
    TraversalMode,
};
use bc_gpusim::{DeviceConfig, FaultHook, SimError};
use bc_graph::stats::RootCostEstimator;
use bc_graph::Csr;
use bc_metrics::{ClusterMetrics, ClusterMetricsSummary, GpuTimeline};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Mutex;
use std::thread;

/// Transmissions attempted per reduce-tree level before the run is
/// declared unreducible.
const REDUCE_ATTEMPT_CAP: u32 = 64;

/// A cluster of identical nodes, each hosting `gpus_per_node`
/// identical GPUs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// GPUs per node (Keeneland: 3).
    pub gpus_per_node: usize,
    /// Per-GPU device model.
    pub device: DeviceConfig,
    /// Interconnect model.
    pub network: NetworkConfig,
    /// BC method every GPU runs.
    pub method: Method,
    /// Forward-sweep direction every GPU uses (the per-root search
    /// is identical on every GPU, so the cluster result stays
    /// bitwise identical in every mode).
    pub traversal: TraversalMode,
    /// How roots are assigned to GPUs. [`Schedule::Static`] keeps the
    /// historical strided (round-robin) layout; the dynamic schedules
    /// plan the assignment from per-root cost estimates. Assignment is
    /// all that changes — the root-ordered merge keeps the scores
    /// bitwise identical under every schedule, and the [`FaultPlan`]
    /// replay stays exact because planning happens before any worker
    /// spawns.
    pub schedule: Schedule,
}

impl ClusterConfig {
    /// A Keeneland-like cluster of `nodes` nodes (3× Tesla M2090
    /// each) running the sampling method — the paper's multi-node
    /// configuration.
    pub fn keeneland(nodes: usize) -> Self {
        ClusterConfig {
            nodes,
            gpus_per_node: 3,
            device: DeviceConfig::tesla_m2090(),
            network: NetworkConfig::keeneland(),
            method: Method::Sampling(Default::default()),
            traversal: TraversalMode::Push,
            schedule: Schedule::Static,
        }
    }

    /// Total GPU count.
    pub fn total_gpus(&self) -> usize {
        self.nodes * self.gpus_per_node
    }
}

/// Result of a cluster run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterRun {
    /// Accumulated BC contributions from all processed roots, merged
    /// in global root order.
    pub scores: Vec<f64>,
    /// Timing and work breakdown.
    pub report: ClusterReport,
}

/// Timing breakdown of a cluster run, extrapolated to the full
/// exact-BC computation (all `n` roots).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Nodes used.
    pub nodes: usize,
    /// Total GPUs used.
    pub gpus: usize,
    /// Graph vertices.
    pub vertices: usize,
    /// Graph undirected edges.
    pub edges: u64,
    /// Sampled roots actually completed.
    pub roots_sampled: usize,
    /// Extrapolated busy time of each GPU (compute plus its share of
    /// fault penalties: backoff, reassignment, straggling).
    pub gpu_seconds: Vec<f64>,
    /// Slowest GPU including setup and result copy-back.
    pub compute_seconds: f64,
    /// The final cross-node reduction, retransmissions included.
    pub reduce_seconds: f64,
    /// End-to-end time for the full exact computation.
    pub total_seconds: f64,
    /// TEPS_BC at cluster scale (Table IV's metric).
    pub teps: f64,
    /// What the fault layer injected and recovered from (all zeros on
    /// a fault-free run).
    pub faults: FaultCounters,
    /// FNV-1a checksum of the final scores — the integrity tag each
    /// rank attaches to its reduce message.
    pub checksum: u64,
    /// Aggregated per-GPU phase metrics when the run was metered
    /// ([`run_cluster_with_faults_metered`]); `None` — and zero
    /// bookkeeping — on plain runs.
    pub metrics: Option<ClusterMetricsSummary>,
    /// What the graceful-degradation ladder did to keep the run
    /// alive (out-of-core partitioning, or the sampled-approximation
    /// fallback under [`DurabilityOptions::degrade`]); `None` when
    /// the run completed exactly as requested.
    pub degradation: Option<Degradation>,
}

impl ClusterReport {
    /// TEPS in billions.
    pub fn gteps(&self) -> f64 {
        self.teps / 1e9
    }
}

/// Durability knobs for a cluster run: checkpoint/restart, watchdog
/// deadlines, and the graceful-degradation ladder. The default (no
/// checkpoint, no deadline, no degradation) reproduces the historical
/// behavior exactly.
#[derive(Clone, Debug, Default)]
pub struct DurabilityOptions {
    /// Stream completed per-root contributions to this directory and
    /// resume from whatever a previous (interrupted) run left there.
    /// The directory's manifest pins the graph digest and an options
    /// fingerprint; a mismatched resume is rejected with
    /// [`ClusterError::Checkpoint`].
    pub checkpoint: Option<PathBuf>,
    /// Per-root deadline budget as a multiple (≥ 1) of the root's
    /// estimated time. GPUs that would blow every deadline (hung
    /// stragglers) have their roots cancelled and migrated to healthy
    /// GPUs instead of being awaited; each cancelled root still burns
    /// its full deadline budget on the hung GPU's clock.
    pub deadline_factor: Option<f64>,
    /// Engage the sampled-approximation rung of the degradation
    /// ladder: when even out-of-core partitioning cannot fit the
    /// requested method, fall back to the leanest method that fits
    /// and approximate from at most
    /// [`DEGRADED_SAMPLE_SOURCES`] sources instead of
    /// rejecting the run.
    pub degrade: bool,
}

/// One scheduled visit of a root on a GPU: `attempts` hook
/// consultations, the last of which succeeds iff `executes`.
#[derive(Clone, Debug)]
struct Task {
    /// Global index into the resolved root list (the merge key).
    idx: usize,
    root: u32,
    attempts: u32,
    executes: bool,
    /// The process dies before this task runs (seeded kill point);
    /// the worker skips it entirely.
    killed: bool,
}

/// Everything one GPU will do, decided before any worker spawns.
#[derive(Clone, Debug, Default)]
struct GpuSchedule {
    tasks: Vec<Task>,
    /// Reassignment events charged to this GPU (adopting a dead
    /// GPU's orphans, or receiving a migrated root).
    adoptions: u32,
}

/// The fully precomputed, deterministic execution schedule.
struct ExecutionSchedule {
    per_gpu: Vec<GpuSchedule>,
    dead: Vec<usize>,
    /// Per global root index: will this root complete somewhere?
    expected: Vec<bool>,
    /// First root (in scheduling order) that exhausted its budget on
    /// every surviving GPU: `(root, gpus_tried, last_error)`.
    failed: Option<(u32, usize, String)>,
    reassigned_roots: u64,
    /// Roots cut off by the seeded kill point (they never run; the
    /// run surfaces as [`ClusterError::ProcessKilled`]).
    killed_roots: usize,
    /// Roots the watchdog cancelled off deadline-blowing GPUs.
    watchdog_cancelled: u64,
    /// Per GPU: summed estimator-normalized weight of the roots the
    /// watchdog cancelled there — each burned `deadline_factor ×`
    /// its expected time before cancellation.
    cancelled_weight: Vec<f64>,
}

/// The mutable state threaded through schedule construction: the
/// per-GPU task lists plus the round-robin migration cursor and the
/// reassignment counter.
struct Placer<'a> {
    plan: &'a FaultPlan,
    alive: &'a [usize],
    per_gpu: Vec<GpuSchedule>,
    cursor: usize,
    reassigned: u64,
}

impl Placer<'_> {
    /// Simulate one root's attempt/migration trajectory starting on
    /// `start_gpu`; record every visit in the schedule. `Err` means
    /// the root failed on every GPU it could reach.
    fn place_root(
        &mut self,
        start_gpu: usize,
        idx: usize,
        root: u32,
    ) -> Result<(), (usize, String)> {
        let plan = self.plan;
        let mut tried: Vec<usize> = Vec::new();
        let mut current = start_gpu;
        loop {
            let success = (1..=plan.max_attempts)
                .find(|&attempt| plan.attempt_fault(current, root, attempt).is_none());
            if let Some(attempt) = success {
                self.per_gpu[current].tasks.push(Task {
                    idx,
                    root,
                    attempts: attempt,
                    executes: true,
                    killed: false,
                });
                return Ok(());
            }
            self.per_gpu[current].tasks.push(Task {
                idx,
                root,
                attempts: plan.max_attempts,
                executes: false,
                killed: false,
            });
            tried.push(current);
            let next = (0..self.alive.len())
                .map(|k| self.alive[(self.cursor + k) % self.alive.len().max(1)])
                .find(|g| !tried.contains(g));
            match next {
                Some(gpu) => {
                    self.cursor += 1;
                    self.reassigned += 1;
                    self.per_gpu[gpu].adoptions += 1;
                    current = gpu;
                }
                None => {
                    let last = match plan.attempt_fault(current, root, plan.max_attempts) {
                        Some(FaultKind::Panic) => format!("injected worker panic on gpu {current}"),
                        Some(FaultKind::Oom) => {
                            format!("injected allocator fault on gpu {current}")
                        }
                        _ => format!("injected transient fault on gpu {current}"),
                    };
                    return Err((tried.len(), last));
                }
            }
        }
    }
}

/// Decide which GPU initially owns each root, before faults are
/// layered on. [`Schedule::Static`] reproduces the historical strided
/// assignment (`root i → GPU i mod gpus`) byte for byte; the dynamic
/// schedules estimate per-root cost with [`RootCostEstimator`] and
/// plan via [`plan_assignment`], so skewed root mixes spread by work
/// rather than by count. Purely a function of `(g, roots, gpus,
/// schedule)` — the [`FaultPlan`] replay depends on it being
/// deterministic.
fn initial_assignment(
    g: &Csr,
    roots: &[u32],
    gpus: usize,
    schedule: Schedule,
) -> Vec<Vec<(usize, u32)>> {
    let mut initial: Vec<Vec<(usize, u32)>> = vec![Vec::new(); gpus];
    if schedule == Schedule::Static || gpus <= 1 {
        for (i, &r) in roots.iter().enumerate() {
            initial[i % gpus].push((i, r));
        }
        return initial;
    }
    let est = RootCostEstimator::new(g, 2);
    let costs: Vec<f64> = roots.iter().map(|&r| est.estimate(r)).collect();
    for (gpu, idxs) in plan_assignment(&costs, gpus, schedule)
        .into_iter()
        .enumerate()
    {
        for i in idxs {
            initial[gpu].push((i, roots[i]));
        }
    }
    initial
}

/// Precompute the whole run: initial cost-planned assignment,
/// watchdog cancellations, death points, orphan adoption, every
/// retry/migration trajectory, and the kill point. `done` marks roots
/// a checkpoint already holds — they are never placed. Purely a
/// function of its arguments, like everything else in the schedule.
fn build_schedule(
    g: &Csr,
    roots: &[u32],
    gpus: usize,
    plan: &FaultPlan,
    schedule: Schedule,
    done: &[bool],
    deadline_factor: Option<f64>,
) -> ExecutionSchedule {
    let mut dead: Vec<usize> = plan
        .dead_gpus
        .iter()
        .copied()
        .filter(|&g| g < gpus)
        .collect();
    dead.sort_unstable();
    dead.dedup();
    let alive_all: Vec<usize> = (0..gpus).filter(|g| !dead.contains(g)).collect();

    // Watchdog pre-pass: a GPU whose slowdown exceeds the deadline
    // factor would blow the per-root budget on every root it owns, so
    // the watchdog cancels its whole share up front — provided a
    // healthy GPU exists to migrate to (if every survivor is hung,
    // awaiting them is the only option left).
    let blown: Vec<usize> = match deadline_factor {
        Some(f) => alive_all
            .iter()
            .copied()
            .filter(|&gpu| plan.deadline_exceeded(gpu, f))
            .collect(),
        None => Vec::new(),
    };
    let watchdog_active = !blown.is_empty() && blown.len() < alive_all.len();
    let alive: Vec<usize> = if watchdog_active {
        alive_all
            .iter()
            .copied()
            .filter(|g| !blown.contains(g))
            .collect()
    } else {
        alive_all
    };

    let mut initial = initial_assignment(g, roots, gpus, schedule);
    if done.iter().any(|&d| d) {
        for list in &mut initial {
            list.retain(|&(idx, _)| !done.get(idx).copied().unwrap_or(false));
        }
    }

    let mut watchdog_cancelled = 0u64;
    let mut cancelled_weight = vec![0.0f64; gpus];
    if watchdog_active {
        // Each cancelled root burned `factor ×` its expected time on
        // the hung GPU before the watchdog fired; weight that burn by
        // the root's estimated cost relative to the run's mean.
        let est = RootCostEstimator::new(g, 2);
        let mean = if roots.is_empty() {
            1.0
        } else {
            let sum: f64 = roots.iter().map(|&r| est.estimate(r)).sum();
            (sum / roots.len() as f64).max(f64::MIN_POSITIVE)
        };
        let mut cursor = 0usize;
        for &hung in &blown {
            let moved = std::mem::take(&mut initial[hung]);
            for (idx, root) in moved {
                watchdog_cancelled += 1;
                cancelled_weight[hung] += est.estimate(root) / mean;
                let target = alive[cursor % alive.len()];
                cursor += 1;
                initial[target].push((idx, root));
            }
        }
    }

    let mut placer = Placer {
        plan,
        alive: &alive,
        per_gpu: vec![GpuSchedule::default(); gpus],
        cursor: 0,
        reassigned: 0,
    };
    let mut expected = vec![false; roots.len()];
    let mut failed: Option<(u32, usize, String)> = None;
    // Orphans of each dead GPU, gathered in (dead-gpu, local) order.
    let mut orphans: Vec<(usize, Vec<(usize, u32)>)> = Vec::new();

    for (gpu, list) in initial.into_iter().enumerate() {
        let keep = plan.death_point(gpu, list.len()).unwrap_or(list.len());
        for (j, (idx, root)) in list.into_iter().enumerate() {
            if j < keep {
                match placer.place_root(gpu, idx, root) {
                    Ok(()) => expected[idx] = true,
                    Err((tried, last)) => {
                        failed.get_or_insert((root, tried, last));
                    }
                }
            } else {
                match orphans.last_mut() {
                    Some((g, bucket)) if *g == gpu => bucket.push((idx, root)),
                    _ => orphans.push((gpu, vec![(idx, root)])),
                }
            }
        }
    }

    // Round-robin the orphans over the survivors. Re-setup + graph
    // re-upload is charged once per (survivor, dead GPU) adoption,
    // not once per root: the survivor re-establishes a context for
    // the dead GPU's workload a single time.
    let mut adopted = vec![vec![false; orphans.len()]; gpus];
    for (bucket_i, (_, bucket)) in orphans.into_iter().enumerate() {
        for (idx, root) in bucket {
            if alive.is_empty() {
                continue; // nobody left; surfaced as AllGpusLost
            }
            let target = alive[placer.cursor % alive.len()];
            placer.cursor += 1;
            placer.reassigned += 1;
            if !adopted[target][bucket_i] {
                adopted[target][bucket_i] = true;
                placer.per_gpu[target].adoptions += 1;
            }
            match placer.place_root(target, idx, root) {
                Ok(()) => expected[idx] = true,
                Err((tried, last)) => {
                    failed.get_or_insert((root, tried, last));
                }
            }
        }
    }

    // Seeded kill point: the process dies after a fixed fraction of
    // the executing roots (in global root order) complete. Later
    // roots never run; their tasks stay in the schedule flagged
    // `killed` so workers skip them, and `expected` is cleared so the
    // merger does not wait for them.
    let mut killed_roots = 0usize;
    if plan.kill_fraction.is_some() {
        let executing: Vec<usize> = (0..expected.len()).filter(|&i| expected[i]).collect();
        let keep = plan.kill_point(executing.len()).unwrap_or(executing.len());
        for &idx in &executing[keep..] {
            expected[idx] = false;
            killed_roots += 1;
            for gpu_sched in &mut placer.per_gpu {
                for task in &mut gpu_sched.tasks {
                    if task.idx == idx {
                        task.killed = true;
                    }
                }
            }
        }
    }

    ExecutionSchedule {
        per_gpu: placer.per_gpu,
        dead,
        expected,
        failed,
        reassigned_roots: placer.reassigned,
        killed_roots,
        watchdog_cancelled,
        cancelled_weight,
    }
}

/// Merges per-root score contributions into the final vector in
/// **global root order**, regardless of which GPU finished which root
/// when — the invariant that keeps faulted scores bitwise identical
/// to fault-free ones.
struct RootMerger {
    state: Mutex<MergerState>,
}

struct MergerState {
    next: usize,
    expected: Vec<bool>,
    pending: BTreeMap<usize, Vec<f64>>,
    scores: Vec<f64>,
}

impl RootMerger {
    fn new(n: usize, expected: Vec<bool>) -> Self {
        RootMerger {
            state: Mutex::new(MergerState {
                next: 0,
                expected,
                pending: BTreeMap::new(),
                scores: vec![0.0; n],
            }),
        }
    }

    /// Hand in root `idx`'s contribution; drains every contiguously
    /// available root so pending stays O(GPUs) in the steady state.
    fn deposit(&self, idx: usize, contribution: Vec<f64>) {
        let mut s = self.state.lock().expect("root merger poisoned");
        s.pending.insert(idx, contribution);
        loop {
            let next = s.next;
            if next >= s.expected.len() {
                break;
            }
            if !s.expected[next] {
                s.next += 1;
                continue;
            }
            let Some(v) = s.pending.remove(&next) else {
                break;
            };
            for (dst, src) in s.scores.iter_mut().zip(&v) {
                *dst += *src;
            }
            s.next += 1;
        }
    }

    /// Final scores; any stragglers left pending (possible only on
    /// error paths) merge in ascending root order.
    fn finish(self) -> Vec<f64> {
        let mut s = self.state.into_inner().expect("root merger poisoned");
        let pending = std::mem::take(&mut s.pending);
        for (_, v) in pending {
            for (dst, src) in s.scores.iter_mut().zip(&v) {
                *dst += *src;
            }
        }
        s.scores
    }
}

/// What one GPU worker reports back.
#[derive(Default)]
struct WorkerOut {
    done: usize,
    block_seconds: f64,
    backoff_seconds: f64,
    transient: u64,
    oom: u64,
    panics: u64,
    retries: u64,
    /// A *genuine* failure (non-injected panic or unexpected
    /// simulator error) that aborted this worker.
    fatal: Option<String>,
}

/// Stringify a contained panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Run exact BC on the cluster without fault injection, simulating
/// `sample_roots` roots per the usual extrapolation (§IV-C: per-root
/// cost is uniform within a component, so `k` roots cost `k×` one
/// root).
pub fn run_cluster(
    g: &Csr,
    cfg: &ClusterConfig,
    sample_roots: usize,
) -> Result<ClusterRun, ClusterError> {
    run_cluster_with_faults(g, cfg, sample_roots, &FaultPlan::none())
}

/// Run exact BC on the cluster under a deterministic fault plan.
///
/// Any *recoverable* plan returns scores bitwise identical to the
/// fault-free run — faults reshuffle which GPU computes which root
/// and stretch the simulated clock, but the root-ordered merge pins
/// the arithmetic. Unrecoverable plans return a structured
/// [`ClusterError`] carrying the partial result; no injected fault
/// ever escapes as a panic.
pub fn run_cluster_with_faults(
    g: &Csr,
    cfg: &ClusterConfig,
    sample_roots: usize,
    plan: &FaultPlan,
) -> Result<ClusterRun, ClusterError> {
    run_cluster_inner(
        g,
        cfg,
        sample_roots,
        plan,
        false,
        &DurabilityOptions::default(),
    )
    .map(|(run, _)| run)
}

/// [`run_cluster_with_faults`] with the durability layer engaged:
/// checkpoint/restart, watchdog deadlines, and the
/// graceful-degradation ladder per [`DurabilityOptions`].
///
/// With a checkpoint directory attached, completed per-root
/// contributions stream to disk as they finish; a rerun of the same
/// configuration against the same directory validates the manifest's
/// graph digest and options fingerprint, skips the completed roots,
/// and merges stored with fresh contributions through the same
/// root-ordered merge — so an interrupted-then-resumed run is bitwise
/// identical to an uninterrupted one.
pub fn run_cluster_durable(
    g: &Csr,
    cfg: &ClusterConfig,
    sample_roots: usize,
    plan: &FaultPlan,
    durability: &DurabilityOptions,
) -> Result<ClusterRun, ClusterError> {
    run_cluster_inner(g, cfg, sample_roots, plan, false, durability).map(|(run, _)| run)
}

/// [`run_cluster_durable`] with per-GPU phase metrics.
pub fn run_cluster_durable_metered(
    g: &Csr,
    cfg: &ClusterConfig,
    sample_roots: usize,
    plan: &FaultPlan,
    durability: &DurabilityOptions,
) -> Result<(ClusterRun, ClusterMetrics), ClusterError> {
    run_cluster_inner(g, cfg, sample_roots, plan, true, durability)
        .map(|(run, m)| (run, m.expect("metered cluster run yields metrics")))
}

/// [`run_cluster_with_faults`] with per-GPU phase metrics.
///
/// Every [`GpuTimeline`] field is a duration or count the runner
/// already computes while assembling the timing model, so metering a
/// cluster run cannot change its scores or its clock: the run is
/// bitwise identical to the unmetered one. The aggregated
/// [`ClusterMetricsSummary`] is also embedded in the returned
/// [`ClusterReport`] (`report.metrics`).
pub fn run_cluster_with_faults_metered(
    g: &Csr,
    cfg: &ClusterConfig,
    sample_roots: usize,
    plan: &FaultPlan,
) -> Result<(ClusterRun, ClusterMetrics), ClusterError> {
    run_cluster_inner(
        g,
        cfg,
        sample_roots,
        plan,
        true,
        &DurabilityOptions::default(),
    )
    .map(|(run, m)| (run, m.expect("metered cluster run yields metrics")))
}

/// The structured pre-flight memory rejection: one required-vs-
/// available diagnostic per GPU (the graph is replicated, so every
/// GPU shows the same arithmetic).
fn insufficient_memory(
    method: &Method,
    gpus: usize,
    required: u64,
    available: u64,
) -> ClusterError {
    ClusterError::InsufficientMemory {
        method: method.name().to_owned(),
        diagnostics: (0..gpus)
            .map(|gpu| GpuMemoryDiagnostic {
                gpu,
                required_bytes: required,
                available_bytes: available,
            })
            .collect(),
    }
}

fn run_cluster_inner(
    g: &Csr,
    cfg: &ClusterConfig,
    sample_roots: usize,
    plan: &FaultPlan,
    metered: bool,
    durability: &DurabilityOptions,
) -> Result<(ClusterRun, Option<ClusterMetrics>), ClusterError> {
    let n = g.num_vertices();
    let gpus = cfg.total_gpus();
    if gpus == 0 {
        return Err(ClusterError::InvalidConfig {
            what: format!(
                "cluster must have at least one GPU ({} node(s) x {} GPU(s)/node)",
                cfg.nodes, cfg.gpus_per_node
            ),
        });
    }
    if let Err(what) = plan.validate() {
        return Err(ClusterError::InvalidConfig { what });
    }
    if let Some(f) = durability.deadline_factor {
        if !f.is_finite() || f < 1.0 {
            return Err(ClusterError::InvalidConfig {
                what: format!("deadline factor must be a finite multiple >= 1, got {f}"),
            });
        }
    }

    // Pre-flight device-memory check and the graceful-degradation
    // ladder. The graph is replicated, so a method whose footprint
    // exceeds one GPU exceeds every GPU. Rung 1: an oversized *CSR*
    // is recoverable — every GPU streams vertex-range slices
    // out-of-core ([`PartitionMode::Auto`]) and pays the swap
    // surcharge. Oversized *local* state is not (GPU-FAN's O(n²)
    // predecessor matrix gains nothing from streaming the graph), so
    // rung 2 — only under [`DurabilityOptions::degrade`] — swaps to
    // the leanest method that fits and approximates from a bounded
    // sample instead of rejecting outright.
    let graph_bytes = footprint::graph_bytes(g);
    let available = cfg.device.global_mem_bytes;
    // How a given method fits on the device: resident, partitioned
    // (with slice count), or not at all.
    let try_fit = |method: &Method| -> Option<(PartitionMode, Option<usize>)> {
        let local = method.local_bytes(g, &cfg.device);
        if graph_bytes + local <= available {
            return Some((PartitionMode::Off, None));
        }
        PartitionPlan::plan(g, available.saturating_sub(local))
            .map(|p| (PartitionMode::Auto, Some(p.num_slices())))
    };
    let mut effective_method = cfg.method.clone();
    let mut sampled = false;
    let fit = match try_fit(&cfg.method) {
        Some(fit) => fit,
        None if durability.degrade => {
            let leaner = [
                Method::WorkEfficient,
                Method::EdgeParallel,
                Method::VertexParallel,
            ]
            .into_iter()
            .filter(|m| m.name() != cfg.method.name())
            .find_map(|m| try_fit(&m).map(|fit| (m, fit)));
            match leaner {
                Some((m, fit)) => {
                    effective_method = m;
                    sampled = true;
                    fit
                }
                None => {
                    let required = graph_bytes + cfg.method.local_bytes(g, &cfg.device);
                    return Err(insufficient_memory(&cfg.method, gpus, required, available));
                }
            }
        }
        None => {
            let required = graph_bytes + cfg.method.local_bytes(g, &cfg.device);
            return Err(insufficient_memory(&cfg.method, gpus, required, available));
        }
    };
    let (partition, slices) = fit;
    let mut degradation = slices.map(|slices| Degradation::Partitioned { slices });

    // Rung 2 caps the root sample: approximation from at most
    // `DEGRADED_SAMPLE_SOURCES` sources, scaled back to exact-BC
    // magnitude by n/k (the usual sampling estimator).
    let roots_budget = if sampled {
        sample_roots.min(DEGRADED_SAMPLE_SOURCES)
    } else {
        sample_roots
    };
    let roots = RootSelection::Strided(roots_budget.min(n)).resolve(n);
    if sampled {
        degradation = Some(Degradation::Sampled {
            method: effective_method.name().to_owned(),
            sources: roots.len(),
            error_bound: error_bound(n, roots.len(), 0.1),
        });
    }

    // Checkpoint store: open (or resume) the directory, pinned to
    // this exact graph and configuration.
    let store = match &durability.checkpoint {
        Some(dir) => {
            let desc = format!(
                "method={} traversal={:?} schedule={} nodes={} gpus-per-node={} device={} \
                 roots={} partition={:?}",
                effective_method.name(),
                cfg.traversal,
                cfg.schedule.name(),
                cfg.nodes,
                cfg.gpus_per_node,
                cfg.device.name,
                roots.len(),
                partition,
            );
            Some(
                CheckpointStore::open(
                    dir,
                    options_fingerprint(&desc),
                    graph_digest(g),
                    n,
                    roots.len(),
                )
                .map_err(|source| ClusterError::Checkpoint { source })?,
            )
        }
        None => None,
    };
    let done = store
        .as_ref()
        .map(CheckpointStore::completed)
        .unwrap_or_else(|| vec![false; roots.len()]);

    let schedule = build_schedule(
        g,
        &roots,
        gpus,
        plan,
        cfg.schedule,
        &done,
        durability.deadline_factor,
    );
    // The merger expects every root the schedule will compute *plus*
    // every root the checkpoint already holds: stored contributions
    // preload below, and the root-ordered drain interleaves them with
    // fresh ones exactly as an uninterrupted run would.
    let mut expected = schedule.expected.clone();
    for (e, &d) in expected.iter_mut().zip(&done) {
        *e |= d;
    }
    let merger = RootMerger::new(n, expected);
    if let Some(store) = &store {
        for (idx, &d) in done.iter().enumerate() {
            if d {
                let scores = store
                    .load(idx)
                    .map_err(|source| ClusterError::Checkpoint { source })?;
                merger.deposit(idx, scores);
            }
        }
    }

    // Execute the precomputed schedule, one host thread per GPU. The
    // workers re-consult the (pure) plan through the bc_gpusim fault
    // hook so containment genuinely runs, but every outcome matches
    // what the scheduler already decided.
    let ckpt_err: Mutex<Option<CheckpointError>> = Mutex::new(None);
    let outs: Vec<WorkerOut> = thread::scope(|scope| {
        let handles: Vec<_> = schedule
            .per_gpu
            .iter()
            .enumerate()
            .map(|(gpu, gpu_sched)| {
                let merger = &merger;
                let store = &store;
                let ckpt_err = &ckpt_err;
                let method = &effective_method;
                scope.spawn(move || -> WorkerOut {
                    let mut out = WorkerOut::default();
                    for task in &gpu_sched.tasks {
                        if task.killed {
                            // The seeded process death lands before
                            // this task; nothing of it runs.
                            continue;
                        }
                        let failed_attempts = if task.executes {
                            task.attempts - 1
                        } else {
                            task.attempts
                        };
                        for attempt in 1..=failed_attempts {
                            let hook = catch_unwind(AssertUnwindSafe(|| {
                                plan.before_attempt(gpu, task.root, attempt)
                            }));
                            match hook {
                                Ok(Ok(())) => {}
                                Ok(Err(SimError::OutOfMemory { .. })) => out.oom += 1,
                                Ok(Err(_)) => out.transient += 1,
                                Err(_) => out.panics += 1,
                            }
                            out.backoff_seconds += plan.backoff_seconds(attempt);
                            if attempt < failed_attempts || task.executes {
                                out.retries += 1;
                            }
                        }
                        if !task.executes {
                            continue;
                        }
                        let hook = catch_unwind(AssertUnwindSafe(|| {
                            plan.before_attempt(gpu, task.root, task.attempts)
                        }));
                        if !matches!(hook, Ok(Ok(()))) {
                            out.fatal = Some(format!(
                                "fault plan is not pure: attempt {} of root {} on gpu {gpu} \
                                 changed outcome between scheduling and execution",
                                task.attempts, task.root
                            ));
                            return out;
                        }
                        let opts = BcOptions {
                            device: cfg.device.clone(),
                            roots: RootSelection::Explicit(vec![task.root]),
                            normalize: false,
                            threads: 1,
                            traversal: cfg.traversal,
                            schedule: Schedule::Static,
                            partition,
                        };
                        match catch_unwind(AssertUnwindSafe(|| method.run(g, &opts))) {
                            Ok(Ok(run)) => {
                                out.block_seconds +=
                                    run.report.per_root_seconds.iter().sum::<f64>();
                                out.done += 1;
                                if let Some(store) = store {
                                    // Stream the contribution to disk
                                    // before merging; a write failure
                                    // is surfaced after the run (the
                                    // in-memory result is still good).
                                    if let Err(e) = store.record(task.idx, &run.scores) {
                                        let mut slot =
                                            ckpt_err.lock().expect("checkpoint error slot");
                                        slot.get_or_insert(e);
                                    }
                                }
                                merger.deposit(task.idx, run.scores);
                            }
                            Ok(Err(e)) => {
                                out.fatal = Some(e.to_string());
                                return out;
                            }
                            Err(payload) => {
                                out.fatal = Some(panic_message(payload));
                                return out;
                            }
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(out) => out,
                Err(payload) => WorkerOut {
                    fatal: Some(panic_message(payload)),
                    ..WorkerOut::default()
                },
            })
            .collect()
    });

    // --- Assemble counters and the extrapolated timing model. ---
    let mut counters = FaultCounters {
        dead_gpus: schedule.dead.len() as u64,
        reassigned_roots: schedule.reassigned_roots,
        straggler_gpus: (0..gpus)
            .filter(|&gpu| plan.straggler_factor(gpu) > 1.0)
            .count() as u64,
        ..FaultCounters::default()
    };

    let sms = f64::from(cfg.device.num_sms);
    let total_done: usize = outs.iter().map(|o| o.done).sum();
    counters.watchdog_cancellations = schedule.watchdog_cancelled;
    // One mean sampled root, extrapolated to its share of the full
    // n-root computation — the unit a watchdog-cancelled root burns
    // `deadline_factor ×` of on the hung GPU's clock.
    let total_block: f64 = outs.iter().map(|o| o.block_seconds).sum();
    let unit_extrap = if total_done > 0 && !roots.is_empty() {
        total_block / total_done as f64 / sms * n as f64 / roots.len() as f64
    } else {
        0.0
    };
    let mut gpu_seconds = Vec::with_capacity(gpus);
    let mut timelines: Vec<GpuTimeline> = Vec::new();
    for (gpu, o) in outs.iter().enumerate() {
        counters.transient_faults += o.transient;
        counters.oom_faults += o.oom;
        counters.panics_contained += o.panics;
        counters.retries += o.retries;
        counters.backoff_seconds += o.backoff_seconds;
        // Extrapolation under redistribution: GPU g's share of the
        // full n-root run is proportional to the sampled roots it
        // actually completed, at its sampled mean per-root time.
        let base = if total_done > 0 {
            o.block_seconds * n as f64 / total_done as f64 / sms
        } else {
            0.0
        };
        let slowed = base * plan.straggler_factor(gpu);
        counters.straggler_seconds += slowed - base;
        let reassign =
            f64::from(schedule.per_gpu[gpu].adoptions) * cfg.network.reassign_seconds(graph_bytes);
        counters.reassign_seconds += reassign;
        let watchdog = durability.deadline_factor.unwrap_or(1.0)
            * schedule.cancelled_weight[gpu]
            * unit_extrap;
        counters.watchdog_seconds += watchdog;
        gpu_seconds.push(slowed + o.backoff_seconds + reassign + watchdog);
        if metered {
            // setup_seconds and reduce_seconds are priced below, once
            // the slowest GPU and the reduce tree are known.
            timelines.push(GpuTimeline {
                gpu,
                roots_done: o.done as u64,
                adoptions: u64::from(schedule.per_gpu[gpu].adoptions),
                retries: o.retries,
                setup_seconds: 0.0,
                compute_seconds: base,
                retry_seconds: o.backoff_seconds,
                migration_seconds: reassign,
                straggler_seconds: slowed - base,
                watchdog_seconds: watchdog,
                reduce_seconds: 0.0,
            });
        }
    }

    let score_bytes = n as u64 * 8;
    let per_gpu_overhead = cfg.network.setup_seconds + cfg.network.d2h_seconds(score_bytes);
    let compute_seconds = gpu_seconds.iter().fold(0.0f64, |a, &b| a.max(b)) + per_gpu_overhead;

    // Checksum-verified binomial-tree reduce: each level retransmits
    // until its message survives (a drop is noticed at the ack
    // timeout, a corruption on arrival), or gives up at the cap.
    let mut reduce_extra = 0.0;
    let mut reduce_failure: Option<(usize, u32)> = None;
    let depth_levels = if cfg.nodes <= 1 {
        0
    } else {
        (cfg.nodes as f64).log2().ceil() as usize
    };
    'levels: for depth in 0..depth_levels {
        let mut attempt = 1u32;
        loop {
            match plan.reduce_fault(depth, attempt) {
                None => break,
                Some(ReduceFault::Dropped) => {
                    counters.reduce_drops += 1;
                    reduce_extra += cfg.network.drop_retry_seconds(score_bytes);
                }
                Some(ReduceFault::Corrupted) => {
                    counters.reduce_corruptions += 1;
                    reduce_extra += cfg.network.corrupt_retry_seconds(score_bytes);
                }
            }
            attempt += 1;
            if attempt > REDUCE_ATTEMPT_CAP {
                reduce_failure = Some((depth, attempt - 1));
                break 'levels;
            }
        }
    }
    let reduce_seconds = cfg.network.reduce_seconds(cfg.nodes, score_bytes) + reduce_extra;
    counters.added_seconds = counters.backoff_seconds
        + counters.reassign_seconds
        + counters.straggler_seconds
        + counters.watchdog_seconds
        + reduce_extra;

    let total_seconds = compute_seconds + reduce_seconds;
    let teps = if total_seconds > 0.0 {
        g.num_undirected_edges() as f64 * n as f64 / total_seconds
    } else {
        0.0
    };

    let cluster_metrics = metered.then(|| {
        for t in &mut timelines {
            t.setup_seconds = per_gpu_overhead;
            t.reduce_seconds = reduce_seconds;
        }
        let summary = ClusterMetricsSummary::from_timelines(&timelines, schedule.dead.len() as u64);
        ClusterMetrics {
            per_gpu: std::mem::take(&mut timelines),
            summary,
        }
    });

    let mut scores = merger.finish();
    if sampled {
        // The sampling estimator: k sources stand in for all n, so
        // each accumulated contribution scales by n/k. Checkpoint
        // chunks store *unscaled* contributions, so a resumed run
        // rescales the stored and fresh parts identically.
        let scale = n as f64 / roots.len().max(1) as f64;
        for s in &mut scores {
            *s *= scale;
        }
    }
    let run = ClusterRun {
        report: ClusterReport {
            nodes: cfg.nodes,
            gpus,
            vertices: n,
            edges: g.num_undirected_edges(),
            roots_sampled: total_done,
            gpu_seconds,
            compute_seconds,
            reduce_seconds,
            total_seconds,
            teps,
            faults: counters,
            checksum: score_checksum(&scores),
            metrics: cluster_metrics.as_ref().map(|m| m.summary),
            degradation: degradation.clone(),
        },
        scores,
    };

    // --- Structured failure, most fundamental first. A genuine
    // worker failure outranks everything: it means results are
    // missing for a reason the fault model did not plan. ---
    if let Some((gpu, message)) = outs
        .iter()
        .enumerate()
        .find_map(|(gpu, o)| o.fatal.as_ref().map(|m| (gpu, m.clone())))
    {
        return Err(ClusterError::WorkerPanicked {
            gpu,
            message,
            partial: Box::new(run),
        });
    }
    if let Some(source) = ckpt_err.into_inner().expect("checkpoint error slot") {
        return Err(ClusterError::Checkpoint { source });
    }
    if schedule.killed_roots > 0 {
        return Err(ClusterError::ProcessKilled {
            completed_roots: total_done,
            planned_roots: roots.len(),
            partial: Box::new(run),
        });
    }
    if schedule.dead.len() == gpus {
        return Err(ClusterError::AllGpusLost {
            dead: schedule.dead,
            completed_roots: total_done,
            partial: Box::new(run),
        });
    }
    if let Some((root, gpus_tried, last_error)) = schedule.failed {
        return Err(ClusterError::RootFailed {
            root,
            gpus_tried,
            last_error,
            partial: Box::new(run),
        });
    }
    if let Some((depth, attempts)) = reduce_failure {
        return Err(ClusterError::ReduceFailed {
            depth,
            attempts,
            partial: Box::new(run),
        });
    }
    Ok((run, cluster_metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_core::brandes;
    use bc_graph::gen;

    #[test]
    fn cluster_scores_match_sequential_when_all_roots_sampled() {
        let g = gen::watts_strogatz(300, 6, 0.1, 1);
        let cfg = ClusterConfig {
            method: Method::WorkEfficient,
            ..ClusterConfig::keeneland(2)
        };
        let run = run_cluster(&g, &cfg, 300).unwrap();
        let expect = brandes::betweenness(&g);
        for (i, (e, a)) in expect.iter().zip(&run.scores).enumerate() {
            assert!((e - a).abs() < 1e-7, "vertex {i}: {e} vs {a}");
        }
        assert_eq!(run.report.roots_sampled, 300);
        assert_eq!(run.report.gpus, 6);
        assert_eq!(run.report.faults, FaultCounters::default());
        assert_eq!(run.report.checksum, score_checksum(&run.scores));
    }

    #[test]
    fn more_nodes_scale_down_compute() {
        // Large enough that per-GPU work dwarfs setup (the paper
        // needs ≥ 2^18 vertices for near-linear speedup at 64 nodes;
        // 2^16 suffices at 8).
        let g = gen::triangulated_grid(256, 256, 3);
        let t1 = run_cluster(&g, &ClusterConfig::keeneland(1), 96).unwrap();
        let t8 = run_cluster(&g, &ClusterConfig::keeneland(8), 96).unwrap();
        let speedup = t1.report.total_seconds / t8.report.total_seconds;
        assert!(
            speedup > 5.0,
            "8 nodes should speed up near-linearly at this scale, got {speedup:.2}x"
        );
        assert!(
            speedup <= 8.5,
            "speedup cannot exceed node ratio, got {speedup:.2}x"
        );
    }

    #[test]
    fn tiny_problems_scale_poorly() {
        // Figure 6's other half: with too few roots per GPU, fixed
        // setup and reduction costs flatten the curve.
        let g = gen::triangulated_grid(48, 48, 3);
        let t1 = run_cluster(&g, &ClusterConfig::keeneland(1), 64).unwrap();
        let t8 = run_cluster(&g, &ClusterConfig::keeneland(8), 64).unwrap();
        let speedup = t1.report.total_seconds / t8.report.total_seconds;
        assert!(
            speedup < 4.0,
            "a 2.3k-vertex problem cannot scale to 24 GPUs, got {speedup:.2}x"
        );
    }

    #[test]
    fn reduce_cost_counted_only_for_multi_node() {
        let g = gen::grid(32, 32);
        let r1 = run_cluster(&g, &ClusterConfig::keeneland(1), 32).unwrap();
        let r4 = run_cluster(&g, &ClusterConfig::keeneland(4), 32).unwrap();
        assert_eq!(r1.report.reduce_seconds, 0.0);
        assert!(r4.report.reduce_seconds > 0.0);
    }

    #[test]
    fn more_gpus_than_samples_still_works() {
        let g = gen::grid(16, 16);
        let run = run_cluster(&g, &ClusterConfig::keeneland(8), 4).unwrap();
        assert_eq!(run.report.gpus, 24);
        assert!(run.report.gpu_seconds.iter().all(|t| t.is_finite()));
        assert!(run.report.total_seconds > 0.0);
    }

    #[test]
    fn cluster_runs_are_bitwise_deterministic() {
        // Root-order merge: repeated runs must agree to the last bit
        // even though worker completion order varies.
        let g = gen::watts_strogatz(300, 6, 0.1, 2);
        let cfg = ClusterConfig::keeneland(2);
        let a = run_cluster(&g, &cfg, 96).unwrap();
        let b = run_cluster(&g, &cfg, 96).unwrap();
        assert_eq!(a.scores, b.scores);
        assert_eq!(a.report.total_seconds, b.report.total_seconds);
    }

    #[test]
    fn scores_are_bitwise_identical_across_node_counts() {
        // The merge runs in global root order no matter which GPU
        // computed which root, so even *different cluster shapes*
        // agree to the last bit.
        let g = gen::watts_strogatz(300, 6, 0.1, 5);
        let one = run_cluster(&g, &ClusterConfig::keeneland(1), 96).unwrap();
        for nodes in [2, 4, 8] {
            let r = run_cluster(&g, &ClusterConfig::keeneland(nodes), 96).unwrap();
            assert_eq!(one.scores, r.scores, "{nodes} nodes");
        }
    }

    #[test]
    fn auto_traversal_matches_push_across_node_counts() {
        // Direction optimization is per-root and purely local, so
        // the cluster scores stay bitwise equal to the push baseline
        // at any node count.
        let g = gen::watts_strogatz(300, 8, 0.1, 4);
        for nodes in [1, 2, 4] {
            let push = run_cluster(&g, &ClusterConfig::keeneland(nodes), 96).unwrap();
            let cfg = ClusterConfig {
                traversal: TraversalMode::Auto,
                ..ClusterConfig::keeneland(nodes)
            };
            let auto = run_cluster(&g, &cfg, 96).unwrap();
            assert_eq!(push.scores, auto.scores, "{nodes} nodes");
        }
    }

    #[test]
    fn oom_is_rejected_preflight() {
        // GPU-FAN's O(n^2) matrix exceeds 6 GB at n = 65k even on the
        // cluster (the graph is replicated, not partitioned). The
        // pre-flight check rejects it before any worker spawns, with
        // a per-GPU diagnosis.
        let g = gen::grid(256, 256);
        let cfg = ClusterConfig {
            method: Method::GpuFan,
            ..ClusterConfig::keeneland(2)
        };
        match run_cluster(&g, &cfg, 8) {
            Err(ClusterError::InsufficientMemory {
                method,
                diagnostics,
            }) => {
                assert_eq!(method, "gpu-fan");
                assert_eq!(diagnostics.len(), 6, "one diagnostic per GPU");
                for (i, d) in diagnostics.iter().enumerate() {
                    assert_eq!(d.gpu, i);
                    assert!(d.required_bytes > d.available_bytes);
                }
            }
            other => panic!("expected InsufficientMemory, got {other:?}"),
        }
    }

    #[test]
    fn oversized_csr_streams_through_partitioned_path_bitwise() {
        // A graph whose CSR does not fit beside the locals on the
        // configured device: the historical pre-flight rejected it;
        // now the runner slices the CSR out-of-core. Scores must stay
        // bitwise identical to a big-memory cluster, both fault-free
        // and under a recoverable fault plan.
        let g = gen::kronecker(12, 8, 5);
        let big = ClusterConfig {
            method: Method::WorkEfficient,
            ..ClusterConfig::keeneland(1)
        };
        let local = big.method.local_bytes(&g, &big.device);
        let small = ClusterConfig {
            device: DeviceConfig {
                global_mem_bytes: local + footprint::graph_bytes(&g) / 3,
                ..big.device.clone()
            },
            ..big.clone()
        };
        let reference = run_cluster(&g, &big, 32).unwrap();
        let clean = run_cluster(&g, &small, 32).unwrap();
        assert_eq!(reference.scores, clean.scores);
        assert_eq!(reference.report.checksum, clean.report.checksum);
        assert!(
            clean.report.total_seconds > reference.report.total_seconds,
            "slice swapping must cost simulated time"
        );
        let plan = FaultPlan {
            transient_rate: 0.2,
            panic_rate: 0.1,
            seed: 13,
            ..FaultPlan::none()
        };
        let faulted = run_cluster_with_faults(&g, &small, 32, &plan).unwrap();
        assert_eq!(clean.scores, faulted.scores);
        assert_eq!(clean.report.checksum, faulted.report.checksum);
    }

    #[test]
    fn oversized_locals_still_reject_on_preflight() {
        // Partitioning streams the *graph*; it cannot shrink per-run
        // local state, so a device too small for the locals alone
        // keeps the structured rejection.
        let g = gen::watts_strogatz(4096, 6, 0.1, 3);
        let cfg = ClusterConfig {
            method: Method::WorkEfficient,
            ..ClusterConfig::keeneland(1)
        };
        let local = cfg.method.local_bytes(&g, &cfg.device);
        let cfg = ClusterConfig {
            device: DeviceConfig {
                global_mem_bytes: local / 2,
                ..cfg.device.clone()
            },
            ..cfg
        };
        assert!(matches!(
            run_cluster(&g, &cfg, 8),
            Err(ClusterError::InsufficientMemory { .. })
        ));
    }

    #[test]
    fn zero_gpus_is_a_structured_error() {
        let g = gen::path(8);
        let cfg = ClusterConfig {
            nodes: 0,
            ..ClusterConfig::keeneland(1)
        };
        assert!(matches!(
            run_cluster(&g, &cfg, 4),
            Err(ClusterError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn transient_faults_leave_scores_bitwise_identical() {
        let g = gen::watts_strogatz(200, 6, 0.1, 7);
        let cfg = ClusterConfig::keeneland(2);
        let clean = run_cluster(&g, &cfg, 64).unwrap();
        let plan = FaultPlan {
            transient_rate: 0.2,
            oom_rate: 0.05,
            seed: 11,
            ..FaultPlan::none()
        };
        let faulted = run_cluster_with_faults(&g, &cfg, 64, &plan).unwrap();
        assert_eq!(clean.scores, faulted.scores);
        assert_eq!(clean.report.checksum, faulted.report.checksum);
        assert!(faulted.report.faults.transient_faults > 0);
        assert!(faulted.report.faults.retries > 0);
        assert!(faulted.report.faults.backoff_seconds > 0.0);
        assert!(
            faulted.report.total_seconds > clean.report.total_seconds,
            "recovery must cost simulated time"
        );
    }

    #[test]
    fn dead_gpu_orphans_are_adopted_bitwise() {
        let g = gen::watts_strogatz(200, 6, 0.1, 8);
        let cfg = ClusterConfig::keeneland(2);
        let clean = run_cluster(&g, &cfg, 60).unwrap();
        let plan = FaultPlan {
            dead_gpus: vec![1, 4],
            death_fraction: 0.25,
            ..FaultPlan::none()
        };
        let faulted = run_cluster_with_faults(&g, &cfg, 60, &plan).unwrap();
        assert_eq!(clean.scores, faulted.scores);
        assert_eq!(faulted.report.faults.dead_gpus, 2);
        assert!(faulted.report.faults.reassigned_roots > 0);
        assert!(faulted.report.faults.reassign_seconds > 0.0);
        assert_eq!(faulted.report.roots_sampled, clean.report.roots_sampled);
    }

    #[test]
    fn injected_panics_are_contained_and_recovered() {
        let g = gen::watts_strogatz(200, 6, 0.1, 9);
        let cfg = ClusterConfig::keeneland(2);
        let clean = run_cluster(&g, &cfg, 48).unwrap();
        let plan = FaultPlan {
            panic_rate: 0.2,
            seed: 3,
            ..FaultPlan::none()
        };
        let faulted = run_cluster_with_faults(&g, &cfg, 48, &plan).unwrap();
        assert_eq!(clean.scores, faulted.scores);
        assert!(faulted.report.faults.panics_contained > 0);
    }

    #[test]
    fn stragglers_stretch_the_clock_not_the_scores() {
        let g = gen::watts_strogatz(200, 6, 0.1, 10);
        let cfg = ClusterConfig::keeneland(2);
        let clean = run_cluster(&g, &cfg, 48).unwrap();
        let plan = FaultPlan {
            straggler_gpus: vec![0],
            straggler_slowdown: 3.0,
            ..FaultPlan::none()
        };
        let faulted = run_cluster_with_faults(&g, &cfg, 48, &plan).unwrap();
        assert_eq!(clean.scores, faulted.scores);
        assert_eq!(faulted.report.faults.straggler_gpus, 1);
        assert!(faulted.report.faults.straggler_seconds > 0.0);
        assert!(faulted.report.total_seconds > clean.report.total_seconds);
    }

    #[test]
    fn reduce_faults_are_priced_and_scores_survive() {
        let g = gen::watts_strogatz(200, 6, 0.1, 12);
        let cfg = ClusterConfig::keeneland(4);
        let clean = run_cluster(&g, &cfg, 48).unwrap();
        let plan = FaultPlan {
            reduce_drop_rate: 0.6,
            reduce_corrupt_rate: 0.2,
            seed: 5,
            ..FaultPlan::none()
        };
        let faulted = run_cluster_with_faults(&g, &cfg, 48, &plan).unwrap();
        assert_eq!(clean.scores, faulted.scores);
        let f = &faulted.report.faults;
        assert!(f.reduce_drops + f.reduce_corruptions > 0);
        assert!(faulted.report.reduce_seconds > clean.report.reduce_seconds);
    }

    #[test]
    fn unreducible_plan_returns_partial() {
        let g = gen::grid(12, 12);
        let cfg = ClusterConfig::keeneland(2);
        let plan = FaultPlan {
            reduce_drop_rate: 1.0,
            ..FaultPlan::none()
        };
        match run_cluster_with_faults(&g, &cfg, 16, &plan) {
            Err(ClusterError::ReduceFailed { partial, .. }) => {
                let clean = run_cluster(&g, &cfg, 16).unwrap();
                assert_eq!(partial.scores, clean.scores, "node-local work completed");
            }
            other => panic!("expected ReduceFailed, got {other:?}"),
        }
    }

    #[test]
    fn all_gpus_lost_returns_partial() {
        let g = gen::watts_strogatz(200, 6, 0.1, 13);
        let cfg = ClusterConfig::keeneland(2);
        let plan = FaultPlan {
            dead_gpus: (0..6).collect(),
            death_fraction: 0.5,
            ..FaultPlan::none()
        };
        match run_cluster_with_faults(&g, &cfg, 48, &plan) {
            Err(e @ ClusterError::AllGpusLost { .. }) => {
                let ClusterError::AllGpusLost {
                    ref dead,
                    completed_roots,
                    ref partial,
                } = e
                else {
                    unreachable!()
                };
                assert_eq!(dead.len(), 6);
                assert!(completed_roots > 0, "half of each share completed");
                assert!(completed_roots < 48);
                assert!(partial.scores.iter().any(|&s| s > 0.0));
                assert_eq!(partial.report.roots_sampled, completed_roots);
                assert!(e.partial().is_some());
            }
            other => panic!("expected AllGpusLost, got {other:?}"),
        }
    }

    #[test]
    fn metered_cluster_run_is_bitwise_identical_and_accounted() {
        let g = gen::watts_strogatz(200, 6, 0.1, 15);
        let cfg = ClusterConfig::keeneland(2);
        let plan = FaultPlan {
            transient_rate: 0.15,
            dead_gpus: vec![1],
            death_fraction: 0.5,
            straggler_gpus: vec![0],
            straggler_slowdown: 2.0,
            ..FaultPlan::none()
        };
        let plain = run_cluster_with_faults(&g, &cfg, 48, &plan).unwrap();
        let (metered, metrics) = run_cluster_with_faults_metered(&g, &cfg, 48, &plan).unwrap();

        // Metering is observation only: scores and every priced
        // second agree to the last bit.
        assert_eq!(plain.scores, metered.scores);
        assert_eq!(plain.report.total_seconds, metered.report.total_seconds);
        assert_eq!(plain.report.gpu_seconds, metered.report.gpu_seconds);
        assert_eq!(plain.report.faults, metered.report.faults);
        assert!(plain.report.metrics.is_none());

        // The timelines reconstruct the runner's own accounting.
        assert_eq!(metrics.per_gpu.len(), 6);
        let s = metered.report.metrics.expect("metered run embeds summary");
        assert_eq!(s.gpus, 6);
        assert_eq!(s.dead_gpus, 1);
        assert_eq!(s.roots_done, metered.report.roots_sampled as u64);
        assert_eq!(s.retries, metered.report.faults.retries);
        assert!((s.retry_seconds - metered.report.faults.backoff_seconds).abs() < 1e-12);
        assert!((s.migration_seconds - metered.report.faults.reassign_seconds).abs() < 1e-12);
        assert!((s.straggler_seconds - metered.report.faults.straggler_seconds).abs() < 1e-12);
        for (gpu, t) in metrics.per_gpu.iter().enumerate() {
            assert_eq!(t.gpu, gpu);
            let billed = t.compute_seconds
                + t.straggler_seconds
                + t.retry_seconds
                + t.migration_seconds
                + t.watchdog_seconds;
            assert!(
                (billed - metered.report.gpu_seconds[gpu]).abs() < 1e-12,
                "gpu {gpu}: timeline {billed} vs report {}",
                metered.report.gpu_seconds[gpu]
            );
        }
    }

    #[test]
    fn dynamic_schedules_keep_cluster_scores_bitwise_identical() {
        // Cost-planned assignment moves roots between GPUs, but the
        // root-ordered merge pins the arithmetic: every schedule
        // agrees with the strided baseline to the last bit, faulted
        // or not.
        let g = gen::watts_strogatz(300, 6, 0.1, 6);
        let base = run_cluster(&g, &ClusterConfig::keeneland(2), 96).unwrap();
        let plan = FaultPlan {
            transient_rate: 0.15,
            dead_gpus: vec![1],
            death_fraction: 0.5,
            seed: 17,
            ..FaultPlan::none()
        };
        for schedule in [Schedule::Guided, Schedule::WorkStealing] {
            let cfg = ClusterConfig {
                schedule,
                ..ClusterConfig::keeneland(2)
            };
            let clean = run_cluster(&g, &cfg, 96).unwrap();
            assert_eq!(base.scores, clean.scores, "{schedule} clean");
            assert_eq!(clean.report.roots_sampled, 96);
            let faulted = run_cluster_with_faults(&g, &cfg, 96, &plan).unwrap();
            assert_eq!(base.scores, faulted.scores, "{schedule} faulted");
            assert!(faulted.report.faults.reassigned_roots > 0);
        }
    }

    #[test]
    fn dynamic_schedules_balance_skewed_roots_across_gpus() {
        // Two components of very different depth: a long path (deep,
        // expensive searches) and a small-world blob (shallow, cheap).
        // Static round-robin ignores cost; the planned schedules put
        // roughly equal estimated work on each GPU, so no GPU gets
        // all of the expensive roots.
        let path: Vec<(u32, u32)> = (0..999u32).map(|i| (i, i + 1)).collect();
        let blob = gen::watts_strogatz(1000, 8, 0.1, 3);
        let blob_edges = blob
            .vertices()
            .flat_map(|u| blob.neighbors(u).iter().map(move |&v| (u, v)))
            .filter(|&(u, v)| u < v)
            .map(|(u, v)| (u + 1000, v + 1000));
        let edges = path.iter().copied().chain(blob_edges);
        let g = Csr::from_undirected_edges(2000, edges);
        let roots: Vec<u32> = (0..2000).step_by(125).map(|r| r as u32).collect();
        let est = RootCostEstimator::new(&g, 2);
        let costs: Vec<f64> = roots.iter().map(|&r| est.estimate(r)).collect();
        for schedule in [Schedule::Guided, Schedule::WorkStealing] {
            let initial = initial_assignment(&g, &roots, 4, schedule);
            let loads: Vec<f64> = initial
                .iter()
                .map(|list| list.iter().map(|&(i, _)| costs[i]).sum())
                .collect();
            let max = loads.iter().fold(0.0f64, |a, &b| a.max(b));
            let min = loads.iter().fold(f64::INFINITY, |a, &b| a.min(b));
            assert!(
                max / min < 2.0,
                "{schedule}: planned loads should be near-even, got {loads:?}"
            );
            let total: usize = initial.iter().map(Vec::len).sum();
            assert_eq!(total, roots.len(), "{schedule}: every root assigned once");
        }
    }

    /// A fresh per-test checkpoint directory under the system temp
    /// dir, unique across concurrent test processes.
    fn temp_ckpt_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let id = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("bc-cluster-ckpt-{tag}-{}-{id}", std::process::id()))
    }

    #[test]
    fn killed_run_checkpoints_and_resume_is_bitwise_identical() {
        let g = gen::watts_strogatz(220, 6, 0.1, 23);
        let cfg = ClusterConfig::keeneland(2);
        let uninterrupted = run_cluster(&g, &cfg, 64).unwrap();

        let dir = temp_ckpt_dir("kill-resume");
        let durability = DurabilityOptions {
            checkpoint: Some(dir.clone()),
            ..DurabilityOptions::default()
        };
        let kill_plan = FaultPlan {
            kill_fraction: Some(0.5),
            transient_rate: 0.1,
            seed: 31,
            ..FaultPlan::none()
        };
        let killed = run_cluster_durable(&g, &cfg, 64, &kill_plan, &durability);
        let (completed, planned) = match killed {
            Err(ClusterError::ProcessKilled {
                completed_roots,
                planned_roots,
                ref partial,
            }) => {
                assert!(partial.scores.iter().any(|&s| s > 0.0));
                (completed_roots, planned_roots)
            }
            other => panic!("expected ProcessKilled, got {other:?}"),
        };
        assert_eq!(planned, 64);
        assert!(completed > 0 && completed < 64, "kill landed mid-run");

        // The rerun (the external killer gone, same recoverable
        // faults) resumes from the checkpoint: only the missing roots
        // compute, and the merged scores are bitwise identical to the
        // uninterrupted run.
        let resume_plan = FaultPlan {
            kill_fraction: None,
            ..kill_plan
        };
        let resumed = run_cluster_durable(&g, &cfg, 64, &resume_plan, &durability).unwrap();
        assert_eq!(uninterrupted.scores, resumed.scores);
        assert_eq!(uninterrupted.report.checksum, resumed.report.checksum);
        assert_eq!(
            resumed.report.roots_sampled,
            64 - completed,
            "resume recomputes only the missing roots"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_config_mismatch_is_rejected() {
        let g = gen::watts_strogatz(200, 6, 0.1, 24);
        let cfg = ClusterConfig::keeneland(1);
        let dir = temp_ckpt_dir("mismatch");
        let durability = DurabilityOptions {
            checkpoint: Some(dir.clone()),
            ..DurabilityOptions::default()
        };
        run_cluster_durable(&g, &cfg, 16, &FaultPlan::none(), &durability).unwrap();
        // Same directory, different traversal mode: the options
        // fingerprint pins the configuration, so resume refuses.
        let other = ClusterConfig {
            traversal: TraversalMode::Pull,
            ..cfg.clone()
        };
        match run_cluster_durable(&g, &other, 16, &FaultPlan::none(), &durability) {
            Err(ClusterError::Checkpoint { source }) => {
                assert!(format!("{source}").contains("fingerprint"), "{source}");
            }
            other => panic!("expected Checkpoint error, got {other:?}"),
        }
        // A different graph is likewise refused.
        let g2 = gen::watts_strogatz(200, 6, 0.1, 25);
        assert!(matches!(
            run_cluster_durable(&g2, &cfg, 16, &FaultPlan::none(), &durability),
            Err(ClusterError::Checkpoint { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn watchdog_cancels_hung_straggler_and_keeps_scores_bitwise() {
        let g = gen::watts_strogatz(220, 6, 0.1, 26);
        let cfg = ClusterConfig::keeneland(2);
        let clean = run_cluster(&g, &cfg, 48).unwrap();
        let plan = FaultPlan {
            straggler_gpus: vec![0],
            straggler_slowdown: 8.0,
            ..FaultPlan::none()
        };
        let durability = DurabilityOptions {
            deadline_factor: Some(3.0),
            ..DurabilityOptions::default()
        };
        let watched = run_cluster_durable(&g, &cfg, 48, &plan, &durability).unwrap();
        assert_eq!(clean.scores, watched.scores, "migration cannot move bits");
        let f = &watched.report.faults;
        assert!(f.watchdog_cancellations > 0, "hung GPU's share cancelled");
        assert!(f.watchdog_seconds > 0.0, "cancelled roots burn deadline");
        // The hung GPU computes nothing, so it cannot straggle.
        assert_eq!(f.straggler_seconds, 0.0);

        // A looser deadline tolerates the straggler: nothing cancels.
        let loose = DurabilityOptions {
            deadline_factor: Some(10.0),
            ..DurabilityOptions::default()
        };
        let tolerated = run_cluster_durable(&g, &cfg, 48, &plan, &loose).unwrap();
        assert_eq!(clean.scores, tolerated.scores);
        assert_eq!(tolerated.report.faults.watchdog_cancellations, 0);
        assert!(tolerated.report.faults.straggler_seconds > 0.0);
    }

    #[test]
    fn invalid_deadline_factor_is_rejected() {
        let g = gen::grid(8, 8);
        let cfg = ClusterConfig::keeneland(1);
        for bad in [0.5, 0.0, -1.0, f64::NAN, f64::INFINITY] {
            let d = DurabilityOptions {
                deadline_factor: Some(bad),
                ..DurabilityOptions::default()
            };
            assert!(
                matches!(
                    run_cluster_durable(&g, &cfg, 4, &FaultPlan::none(), &d),
                    Err(ClusterError::InvalidConfig { .. })
                ),
                "deadline factor {bad} must be rejected"
            );
        }
    }

    #[test]
    fn partitioned_runs_record_the_degradation_decision() {
        let g = gen::kronecker(12, 8, 5);
        let big = ClusterConfig {
            method: Method::WorkEfficient,
            ..ClusterConfig::keeneland(1)
        };
        let local = big.method.local_bytes(&g, &big.device);
        let small = ClusterConfig {
            device: DeviceConfig {
                global_mem_bytes: local + footprint::graph_bytes(&g) / 3,
                ..big.device.clone()
            },
            ..big.clone()
        };
        let fit = run_cluster(&g, &big, 16).unwrap();
        assert_eq!(fit.report.degradation, None);
        let squeezed = run_cluster(&g, &small, 16).unwrap();
        match squeezed.report.degradation {
            Some(Degradation::Partitioned { slices }) => assert!(slices >= 2),
            ref other => panic!("expected Partitioned, got {other:?}"),
        }
        assert_eq!(fit.scores, squeezed.scores);
    }

    #[test]
    fn degradation_ladder_samples_when_partitioning_cannot_help() {
        // GPU-FAN's O(n²) locals cannot fit no matter how the graph
        // is sliced. Without the ladder: structured rejection. With
        // `degrade`: the leanest fitting method approximates from a
        // bounded sample, and the decision is on the report.
        let g = gen::grid(256, 256);
        let cfg = ClusterConfig {
            method: Method::GpuFan,
            ..ClusterConfig::keeneland(2)
        };
        assert!(matches!(
            run_cluster(&g, &cfg, 8),
            Err(ClusterError::InsufficientMemory { .. })
        ));
        let durability = DurabilityOptions {
            degrade: true,
            ..DurabilityOptions::default()
        };
        let run = run_cluster_durable(&g, &cfg, 8, &FaultPlan::none(), &durability).unwrap();
        match &run.report.degradation {
            Some(Degradation::Sampled {
                method,
                sources,
                error_bound,
            }) => {
                assert_eq!(method, "work-efficient");
                assert_eq!(*sources, 8);
                assert!(error_bound.is_finite() && *error_bound > 0.0);
            }
            other => panic!("expected Sampled, got {other:?}"),
        }
        assert!(run.scores.iter().any(|&s| s > 0.0));
    }

    #[test]
    fn faulted_runs_are_bitwise_deterministic() {
        let g = gen::watts_strogatz(200, 6, 0.1, 14);
        let cfg = ClusterConfig::keeneland(2);
        let plan = FaultPlan {
            transient_rate: 0.15,
            panic_rate: 0.05,
            dead_gpus: vec![2],
            death_fraction: 0.5,
            straggler_gpus: vec![0],
            straggler_slowdown: 2.0,
            reduce_drop_rate: 0.3,
            seed: 21,
            ..FaultPlan::none()
        };
        let a = run_cluster_with_faults(&g, &cfg, 48, &plan).unwrap();
        let b = run_cluster_with_faults(&g, &cfg, 48, &plan).unwrap();
        assert_eq!(a.scores, b.scores);
        assert_eq!(a.report.total_seconds, b.report.total_seconds);
        assert_eq!(a.report.faults, b.report.faults);
    }
}
