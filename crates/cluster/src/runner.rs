//! Multi-GPU / multi-node execution.
//!
//! Mirrors the paper's §V-D setup: the graph is replicated on every
//! GPU, roots are distributed across GPUs, per-GPU scores are
//! accumulated node-locally, and node results are combined with one
//! `MPI_Reduce`. Each simulated GPU is driven by a real host thread
//! (the coarse-grained parallelism is genuinely executed), while the
//! timing comes from the per-GPU simulation plus the network model.

use crate::net::NetworkConfig;
use crate::partition;
use bc_core::{BcOptions, Method, RootSelection, TraversalMode};
use bc_gpusim::{DeviceConfig, SimError};
use bc_graph::Csr;
use serde::{Deserialize, Serialize};
use std::thread;

/// A cluster of identical nodes, each hosting `gpus_per_node`
/// identical GPUs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// GPUs per node (Keeneland: 3).
    pub gpus_per_node: usize,
    /// Per-GPU device model.
    pub device: DeviceConfig,
    /// Interconnect model.
    pub network: NetworkConfig,
    /// BC method every GPU runs.
    pub method: Method,
    /// Forward-sweep direction every GPU uses (the per-root search
    /// is identical on every GPU, so the cluster result stays
    /// bitwise identical in every mode).
    pub traversal: TraversalMode,
}

impl ClusterConfig {
    /// A Keeneland-like cluster of `nodes` nodes (3× Tesla M2090
    /// each) running the sampling method — the paper's multi-node
    /// configuration.
    pub fn keeneland(nodes: usize) -> Self {
        ClusterConfig {
            nodes,
            gpus_per_node: 3,
            device: DeviceConfig::tesla_m2090(),
            network: NetworkConfig::keeneland(),
            method: Method::Sampling(Default::default()),
            traversal: TraversalMode::Push,
        }
    }

    /// Total GPU count.
    pub fn total_gpus(&self) -> usize {
        self.nodes * self.gpus_per_node
    }
}

/// Result of a cluster run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterRun {
    /// Accumulated BC contributions from all processed roots.
    pub scores: Vec<f64>,
    /// Timing and work breakdown.
    pub report: ClusterReport,
}

/// Timing breakdown of a cluster run, extrapolated to the full
/// exact-BC computation (all `n` roots).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Nodes used.
    pub nodes: usize,
    /// Total GPUs used.
    pub gpus: usize,
    /// Graph vertices.
    pub vertices: usize,
    /// Graph undirected edges.
    pub edges: u64,
    /// Sampled roots actually simulated.
    pub roots_sampled: usize,
    /// Extrapolated busy time of each GPU (compute only).
    pub gpu_seconds: Vec<f64>,
    /// Slowest GPU including setup and result copy-back.
    pub compute_seconds: f64,
    /// The final cross-node reduction.
    pub reduce_seconds: f64,
    /// End-to-end time for the full exact computation.
    pub total_seconds: f64,
    /// TEPS_BC at cluster scale (Table IV's metric).
    pub teps: f64,
}

impl ClusterReport {
    /// TEPS in billions.
    pub fn gteps(&self) -> f64 {
        self.teps / 1e9
    }
}

/// Run exact BC on the cluster, simulating `sample_roots` roots per
/// the usual extrapolation (§IV-C: per-root cost is uniform within a
/// component, so `k` roots cost `k×` one root).
pub fn run_cluster(
    g: &Csr,
    cfg: &ClusterConfig,
    sample_roots: usize,
) -> Result<ClusterRun, SimError> {
    let n = g.num_vertices();
    let gpus = cfg.total_gpus();
    assert!(gpus > 0, "cluster must have at least one GPU");
    let roots = RootSelection::Strided(sample_roots.min(n)).resolve(n);
    let parts = partition::strided(&roots, gpus);

    // Within each simulated GPU, the per-root engine is itself
    // sharded across the host threads left over after one thread per
    // GPU; results stay bitwise deterministic regardless.
    let inner_threads = (bc_core::effective_threads(0) / gpus).max(1);

    /// (per-GPU scores, sampled root count, summed block-seconds).
    type GpuOutcome = Result<(Vec<f64>, usize, f64), SimError>;
    // Spawn one worker per GPU, then join **in GPU index order** and
    // merge scores in that order — the accumulation order (and hence
    // every last bit of the result) no longer depends on which worker
    // finishes first.
    let per_gpu: Vec<GpuOutcome> = thread::scope(|scope| {
        let handles: Vec<_> = parts
            .iter()
            .map(|part| {
                scope.spawn(move || -> GpuOutcome {
                    let opts = BcOptions {
                        device: cfg.device.clone(),
                        roots: RootSelection::Explicit(part.clone()),
                        normalize: false,
                        threads: inner_threads,
                        traversal: cfg.traversal,
                    };
                    let run = cfg.method.run(g, &opts)?;
                    // Total block-seconds, not makespan: a handful of
                    // sampled roots underfills the SMs, and
                    // extrapolating the makespan would hide the
                    // serialization the full root share experiences.
                    let block_seconds: f64 = run.report.per_root_seconds.iter().sum();
                    Ok((run.scores, run.report.roots_processed, block_seconds))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("GPU worker thread panicked"))
            .collect()
    });

    // Extrapolate each GPU's sampled device time to its share of all
    // n roots.
    let sms = cfg.device.num_sms as f64;
    let mut scores = vec![0.0f64; n];
    let mut gpu_seconds = Vec::with_capacity(gpus);
    let mut mean_pool = Vec::new();
    for (gpu, outcome) in per_gpu.into_iter().enumerate() {
        let (gpu_scores, sampled, block_secs) = outcome?;
        for (t, s) in scores.iter_mut().zip(&gpu_scores) {
            *t += s;
        }
        let share = partition::strided_share(n, gpu, gpus);
        // The GPU's full-run time: its share of roots at the sampled
        // mean block-time, spread across its SMs.
        let time = if sampled == 0 {
            f64::NAN
        } else {
            block_secs * share as f64 / sampled as f64 / sms
        };
        if time.is_finite() {
            mean_pool.push(time);
        }
        gpu_seconds.push(time);
    }
    // GPUs that received no samples (more GPUs than sampled roots)
    // still own a share; charge them the mean.
    let fallback = if mean_pool.is_empty() {
        0.0
    } else {
        mean_pool.iter().sum::<f64>() / mean_pool.len() as f64
    };
    for t in gpu_seconds.iter_mut() {
        if t.is_nan() {
            *t = fallback;
        }
    }

    let score_bytes = n as u64 * 8;
    let per_gpu_overhead = cfg.network.setup_seconds + cfg.network.d2h_seconds(score_bytes);
    let compute_seconds = gpu_seconds.iter().fold(0.0f64, |a, &b| a.max(b)) + per_gpu_overhead;
    let reduce_seconds = cfg.network.reduce_seconds(cfg.nodes, score_bytes);
    let total_seconds = compute_seconds + reduce_seconds;
    let teps = if total_seconds > 0.0 {
        g.num_undirected_edges() as f64 * n as f64 / total_seconds
    } else {
        0.0
    };

    Ok(ClusterRun {
        scores,
        report: ClusterReport {
            nodes: cfg.nodes,
            gpus,
            vertices: n,
            edges: g.num_undirected_edges(),
            roots_sampled: roots.len(),
            gpu_seconds,
            compute_seconds,
            reduce_seconds,
            total_seconds,
            teps,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_core::brandes;
    use bc_graph::gen;

    #[test]
    fn cluster_scores_match_sequential_when_all_roots_sampled() {
        let g = gen::watts_strogatz(300, 6, 0.1, 1);
        let cfg = ClusterConfig {
            method: Method::WorkEfficient,
            ..ClusterConfig::keeneland(2)
        };
        let run = run_cluster(&g, &cfg, 300).unwrap();
        let expect = brandes::betweenness(&g);
        for (i, (e, a)) in expect.iter().zip(&run.scores).enumerate() {
            assert!((e - a).abs() < 1e-7, "vertex {i}: {e} vs {a}");
        }
        assert_eq!(run.report.roots_sampled, 300);
        assert_eq!(run.report.gpus, 6);
    }

    #[test]
    fn more_nodes_scale_down_compute() {
        // Large enough that per-GPU work dwarfs setup (the paper
        // needs ≥ 2^18 vertices for near-linear speedup at 64 nodes;
        // 2^16 suffices at 8).
        let g = gen::triangulated_grid(256, 256, 3);
        let t1 = run_cluster(&g, &ClusterConfig::keeneland(1), 96).unwrap();
        let t8 = run_cluster(&g, &ClusterConfig::keeneland(8), 96).unwrap();
        let speedup = t1.report.total_seconds / t8.report.total_seconds;
        assert!(
            speedup > 5.0,
            "8 nodes should speed up near-linearly at this scale, got {speedup:.2}x"
        );
        assert!(
            speedup <= 8.5,
            "speedup cannot exceed node ratio, got {speedup:.2}x"
        );
    }

    #[test]
    fn tiny_problems_scale_poorly() {
        // Figure 6's other half: with too few roots per GPU, fixed
        // setup and reduction costs flatten the curve.
        let g = gen::triangulated_grid(48, 48, 3);
        let t1 = run_cluster(&g, &ClusterConfig::keeneland(1), 64).unwrap();
        let t8 = run_cluster(&g, &ClusterConfig::keeneland(8), 64).unwrap();
        let speedup = t1.report.total_seconds / t8.report.total_seconds;
        assert!(
            speedup < 4.0,
            "a 2.3k-vertex problem cannot scale to 24 GPUs, got {speedup:.2}x"
        );
    }

    #[test]
    fn reduce_cost_counted_only_for_multi_node() {
        let g = gen::grid(32, 32);
        let r1 = run_cluster(&g, &ClusterConfig::keeneland(1), 32).unwrap();
        let r4 = run_cluster(&g, &ClusterConfig::keeneland(4), 32).unwrap();
        assert_eq!(r1.report.reduce_seconds, 0.0);
        assert!(r4.report.reduce_seconds > 0.0);
    }

    #[test]
    fn more_gpus_than_samples_still_works() {
        let g = gen::grid(16, 16);
        let run = run_cluster(&g, &ClusterConfig::keeneland(8), 4).unwrap();
        assert_eq!(run.report.gpus, 24);
        assert!(run.report.gpu_seconds.iter().all(|t| t.is_finite()));
        assert!(run.report.total_seconds > 0.0);
    }

    #[test]
    fn cluster_runs_are_bitwise_deterministic() {
        // GPU-order merge: repeated runs must agree to the last bit
        // even though worker completion order varies.
        let g = gen::watts_strogatz(300, 6, 0.1, 2);
        let cfg = ClusterConfig::keeneland(2);
        let a = run_cluster(&g, &cfg, 96).unwrap();
        let b = run_cluster(&g, &cfg, 96).unwrap();
        assert_eq!(a.scores, b.scores);
        assert_eq!(a.report.total_seconds, b.report.total_seconds);
    }

    #[test]
    fn auto_traversal_matches_push_across_node_counts() {
        // Direction optimization is per-root and purely local, so at
        // any fixed node count the cluster scores stay bitwise equal
        // to the push baseline. (Different node counts group the
        // per-root additions differently and may drift by an ulp —
        // push drifts identically, so the comparison is per count.)
        let g = gen::watts_strogatz(300, 8, 0.1, 4);
        for nodes in [1, 2, 4] {
            let push = run_cluster(&g, &ClusterConfig::keeneland(nodes), 96).unwrap();
            let cfg = ClusterConfig {
                traversal: TraversalMode::Auto,
                ..ClusterConfig::keeneland(nodes)
            };
            let auto = run_cluster(&g, &cfg, 96).unwrap();
            assert_eq!(push.scores, auto.scores, "{nodes} nodes");
        }
    }

    #[test]
    fn oom_propagates_from_workers() {
        // GPU-FAN's O(n^2) matrix exceeds 6 GB at n = 65k even on the
        // cluster (the graph is replicated, not partitioned).
        let g = gen::grid(256, 256);
        let cfg = ClusterConfig {
            method: Method::GpuFan,
            ..ClusterConfig::keeneland(2)
        };
        assert!(matches!(
            run_cluster(&g, &cfg, 8),
            Err(SimError::OutOfMemory { .. })
        ));
    }
}
