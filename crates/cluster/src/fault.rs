//! Deterministic fault injection for the cluster runner.
//!
//! A 192-GPU Keeneland job (the paper's §V-D scale) does not finish
//! without surviving faults: transient launch failures, devices
//! falling off the bus mid-run, stragglers, and lossy reductions. The
//! simulator's host never fails, so faults are *injected* — and
//! injected **deterministically**: every decision is a pure hash of
//! `(seed, kind, gpu, root, attempt)`, so a fault schedule is a
//! function of the [`FaultPlan`] alone. The same plan replays the
//! same faults run after run, timing included, and the scheduler can
//! precompute the whole schedule before spawning a single worker.
//!
//! The recovery invariant the runner builds on top (see
//! `runner::run_cluster_with_faults`): because scores are merged in
//! **global root order**, any *recoverable* plan yields scores
//! bitwise identical to the fault-free run — faults may move roots
//! between GPUs and stretch the simulated clock, but never touch the
//! arithmetic.

use bc_gpusim::{FaultHook, SimError};
use serde::{Deserialize, Serialize};

/// Marker prefixing every injected panic payload, so the process-wide
/// panic hook can keep injected deaths off stderr while genuine
/// panics still print.
pub const INJECTED_PANIC_PREFIX: &str = "injected fault:";

/// What kind of fault an attempt draws.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Retryable device hiccup (ECC error, spurious launch failure).
    Transient,
    /// Transient allocator failure (fragmentation); retryable here,
    /// unlike a genuine capacity [`SimError::OutOfMemory`].
    Oom,
    /// The worker thread dies mid-kernel; the scheduler must contain
    /// the unwind.
    Panic,
}

/// What a reduce message draws at one tree level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceFault {
    /// The message never arrives; noticed at the ack timeout,
    /// then retransmitted.
    Dropped,
    /// The message arrives but fails its checksum; retransmitted
    /// immediately.
    Corrupted,
}

/// A seeded, fully deterministic fault schedule.
///
/// `FaultPlan::none()` (also [`Default`]) injects nothing — the
/// fault-free baseline every faulted run must match bitwise.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for every hash decision.
    pub seed: u64,
    /// Per-attempt probability of a transient device fault.
    pub transient_rate: f64,
    /// Per-attempt probability of a transient allocator failure.
    pub oom_rate: f64,
    /// Per-attempt probability of the worker panicking.
    pub panic_rate: f64,
    /// Attempts a root gets on one GPU before migrating elsewhere.
    pub max_attempts: u32,
    /// First retry backoff, seconds; doubles per attempt.
    pub backoff_base_seconds: f64,
    /// Backoff ceiling, seconds.
    pub backoff_cap_seconds: f64,
    /// GPUs that die permanently mid-run (indices into the cluster's
    /// flat GPU list; out-of-range indices are ignored).
    pub dead_gpus: Vec<usize>,
    /// Fraction of its assigned roots a dying GPU completes before
    /// the loss; the rest are orphaned and reassigned.
    pub death_fraction: f64,
    /// GPUs whose compute time is stretched by
    /// [`straggler_slowdown`](Self::straggler_slowdown).
    pub straggler_gpus: Vec<usize>,
    /// Multiplier on a straggler's compute time (≥ 1).
    pub straggler_slowdown: f64,
    /// Per-message probability a reduce hop is dropped.
    pub reduce_drop_rate: f64,
    /// Per-message probability a reduce hop is corrupted.
    pub reduce_corrupt_rate: f64,
    /// Kill point: the whole process dies after this fraction of the
    /// run's executing roots complete (in global root order). `None`
    /// means the process survives. Unlike every other fault this one
    /// is *not* recoverable in-process — the runner checkpoints what
    /// finished, returns `ClusterError::ProcessKilled`, and a rerun
    /// against the same checkpoint directory resumes.
    pub kill_fraction: Option<f64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The fault-free plan: nothing ever fails.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            transient_rate: 0.0,
            oom_rate: 0.0,
            panic_rate: 0.0,
            max_attempts: 4,
            backoff_base_seconds: 0.05,
            backoff_cap_seconds: 1.0,
            dead_gpus: Vec::new(),
            death_fraction: 0.5,
            straggler_gpus: Vec::new(),
            straggler_slowdown: 1.0,
            reduce_drop_rate: 0.0,
            reduce_corrupt_rate: 0.0,
            kill_fraction: None,
        }
    }

    /// Does this plan inject anything at all?
    pub fn is_none(&self) -> bool {
        self.transient_rate == 0.0
            && self.oom_rate == 0.0
            && self.panic_rate == 0.0
            && self.dead_gpus.is_empty()
            && (self.straggler_gpus.is_empty() || self.straggler_slowdown == 1.0)
            && self.reduce_drop_rate == 0.0
            && self.reduce_corrupt_rate == 0.0
            && self.kill_fraction.is_none()
    }

    /// Parse a `--faults` spec: comma-separated `key=value` pairs.
    ///
    /// Keys: `seed`, `transient`, `oom`, `panic`, `attempts`,
    /// `backoff`, `backoff_cap`, `dead` (`+`-separated GPU indices),
    /// `death_fraction`, `straggle` (`+`-separated GPU indices),
    /// `slowdown`, `drop`, `corrupt`, `kill` (process dies after this
    /// fraction of roots completes). Example:
    /// `seed=7,transient=0.05,dead=1+4,death_fraction=0.3,drop=0.1`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        for pair in spec.split(',').filter(|s| !s.trim().is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("--faults entry '{pair}' is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let num = |what: &str| -> Result<f64, String> {
                value
                    .parse::<f64>()
                    .map_err(|_| format!("--faults {what}={value} is not a number"))
            };
            let gpu_list = || -> Result<Vec<usize>, String> {
                value
                    .split('+')
                    .map(|t| {
                        t.trim().parse::<usize>().map_err(|_| {
                            format!("--faults {key}={value}: '{t}' is not a GPU index")
                        })
                    })
                    .collect()
            };
            match key {
                "seed" => {
                    plan.seed = value
                        .parse::<u64>()
                        .map_err(|_| format!("--faults seed={value} is not an integer"))?;
                }
                "transient" => plan.transient_rate = num("transient")?,
                "oom" => plan.oom_rate = num("oom")?,
                "panic" => plan.panic_rate = num("panic")?,
                "attempts" => {
                    plan.max_attempts = value
                        .parse::<u32>()
                        .map_err(|_| format!("--faults attempts={value} is not an integer"))?;
                }
                "backoff" => plan.backoff_base_seconds = num("backoff")?,
                "backoff_cap" => plan.backoff_cap_seconds = num("backoff_cap")?,
                "dead" => plan.dead_gpus = gpu_list()?,
                "death_fraction" => plan.death_fraction = num("death_fraction")?,
                "straggle" => plan.straggler_gpus = gpu_list()?,
                "slowdown" => plan.straggler_slowdown = num("slowdown")?,
                "drop" => plan.reduce_drop_rate = num("drop")?,
                "corrupt" => plan.reduce_corrupt_rate = num("corrupt")?,
                "kill" => plan.kill_fraction = Some(num("kill")?),
                other => return Err(format!("--faults: unknown key '{other}'")),
            }
        }
        plan.validate()?;
        Ok(plan)
    }

    /// Reject plans whose parameters are outside their domains.
    pub fn validate(&self) -> Result<(), String> {
        let probs = [
            ("transient", self.transient_rate),
            ("oom", self.oom_rate),
            ("panic", self.panic_rate),
            ("death_fraction", self.death_fraction),
            ("drop", self.reduce_drop_rate),
            ("corrupt", self.reduce_corrupt_rate),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("fault plan: {name}={p} must be in [0, 1]"));
            }
        }
        if self.max_attempts == 0 {
            return Err("fault plan: attempts must be >= 1".into());
        }
        if self.straggler_slowdown < 1.0 {
            return Err(format!(
                "fault plan: slowdown={} must be >= 1",
                self.straggler_slowdown
            ));
        }
        if self.backoff_base_seconds < 0.0 || self.backoff_cap_seconds < 0.0 {
            return Err("fault plan: backoff times must be >= 0".into());
        }
        if let Some(f) = self.kill_fraction {
            if !(0.0..=1.0).contains(&f) {
                return Err(format!("fault plan: kill={f} must be in [0, 1]"));
            }
        }
        Ok(())
    }

    /// How many of the run's `executing` roots complete (in global
    /// root order) before the process dies; `None` when the plan has
    /// no kill point.
    pub fn kill_point(&self, executing: usize) -> Option<usize> {
        self.kill_fraction
            .map(|f| ((f * executing as f64).floor() as usize).min(executing))
    }

    /// A uniform draw in `[0, 1)` from the plan seed, a decision tag,
    /// and up to three keys — the pure core every decision reduces
    /// to.
    fn draw(&self, tag: u64, a: u64, b: u64, c: u64) -> f64 {
        let mut x = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(tag);
        for k in [a, b, c] {
            x = splitmix64(x ^ splitmix64(k.wrapping_add(0xd1b5_4a32_d192_ed03)));
        }
        (splitmix64(x) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Does attempt `attempt` of `root` on `gpu` fault, and how?
    /// Pure: the same triple always answers the same.
    pub fn attempt_fault(&self, gpu: usize, root: u32, attempt: u32) -> Option<FaultKind> {
        let (g, r, a) = (gpu as u64, root as u64, attempt as u64);
        if self.draw(1, g, r, a) < self.panic_rate {
            return Some(FaultKind::Panic);
        }
        if self.draw(2, g, r, a) < self.oom_rate {
            return Some(FaultKind::Oom);
        }
        if self.draw(3, g, r, a) < self.transient_rate {
            return Some(FaultKind::Transient);
        }
        None
    }

    /// Capped exponential backoff charged before retry `attempt + 1`.
    pub fn backoff_seconds(&self, attempt: u32) -> f64 {
        let exp = 2f64.powi(attempt.saturating_sub(1).min(62) as i32);
        (self.backoff_base_seconds * exp).min(self.backoff_cap_seconds)
    }

    /// If `gpu` dies, how many of its `assigned` roots it completes
    /// first; `None` for healthy GPUs.
    pub fn death_point(&self, gpu: usize, assigned: usize) -> Option<usize> {
        if self.dead_gpus.contains(&gpu) {
            Some(((self.death_fraction * assigned as f64).floor() as usize).min(assigned))
        } else {
            None
        }
    }

    /// Compute-time multiplier for `gpu` (1.0 unless it straggles).
    pub fn straggler_factor(&self, gpu: usize) -> f64 {
        if self.straggler_gpus.contains(&gpu) {
            self.straggler_slowdown
        } else {
            1.0
        }
    }

    /// Does transmission `attempt` at reduce-tree level `depth`
    /// fault, and how? Pure in `(depth, attempt)`.
    pub fn reduce_fault(&self, depth: usize, attempt: u32) -> Option<ReduceFault> {
        let (d, a) = (depth as u64, attempt as u64);
        if self.draw(4, d, a, 0) < self.reduce_drop_rate {
            return Some(ReduceFault::Dropped);
        }
        if self.draw(5, d, a, 0) < self.reduce_corrupt_rate {
            return Some(ReduceFault::Corrupted);
        }
        None
    }
}

impl FaultHook for FaultPlan {
    /// Inject the planned fault for this `(worker, unit, attempt)`
    /// triple: `Ok` to proceed, `Err` for transient/OOM faults, or a
    /// panic (with [`INJECTED_PANIC_PREFIX`]) for a worker death the
    /// caller must contain.
    fn before_attempt(&self, worker: usize, unit: u32, attempt: u32) -> Result<(), SimError> {
        match self.attempt_fault(worker, unit, attempt) {
            None => Ok(()),
            Some(FaultKind::Panic) => {
                silence_injected_panics();
                panic!(
                    "{INJECTED_PANIC_PREFIX} worker {worker} died executing \
                     root {unit} (attempt {attempt})"
                );
            }
            Some(FaultKind::Oom) => Err(SimError::OutOfMemory {
                requested: 0,
                in_use: 0,
                capacity: 0,
                what: format!("injected allocator fault on root {unit} (attempt {attempt})"),
            }),
            Some(FaultKind::Transient) => Err(SimError::TransientFault {
                what: format!("root {unit} on gpu {worker}"),
                attempt,
            }),
        }
    }

    /// A straggler whose slowdown exceeds the deadline factor would
    /// blow every per-root budget of `factor` × expected time — the
    /// watchdog cancels its roots up front instead of awaiting them.
    fn deadline_exceeded(&self, worker: usize, factor: f64) -> bool {
        self.straggler_factor(worker) > factor
    }
}

/// Keep injected panics (payloads starting with
/// [`INJECTED_PANIC_PREFIX`]) off stderr; every other panic still
/// reaches the previously installed hook. Installed once per
/// process, idempotent and race-free.
fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let injected = payload
                .downcast_ref::<String>()
                .map(|s| s.starts_with(INJECTED_PANIC_PREFIX))
                .or_else(|| {
                    payload
                        .downcast_ref::<&str>()
                        .map(|s| s.starts_with(INJECTED_PANIC_PREFIX))
                })
                .unwrap_or(false);
            if !injected {
                previous(info);
            }
        }));
    });
}

/// FNV-1a over the raw bits of every score — the checksum each rank
/// attaches to its reduce message so corruption is detected on
/// arrival.
pub fn score_checksum(scores: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for s in scores {
        for byte in s.to_bits().to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// What the fault layer did during one cluster run — all zeros on a
/// fault-free run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Transient device faults injected.
    pub transient_faults: u64,
    /// Transient allocator (OOM) faults injected.
    pub oom_faults: u64,
    /// Worker panics injected and contained via `catch_unwind`.
    pub panics_contained: u64,
    /// Retries issued (failed attempts followed by another attempt on
    /// the same GPU).
    pub retries: u64,
    /// Simulated seconds spent in retry backoff, summed over GPUs.
    pub backoff_seconds: f64,
    /// GPUs lost permanently mid-run.
    pub dead_gpus: u64,
    /// Roots that changed GPUs (orphaned by a death, or migrated
    /// after exhausting retries).
    pub reassigned_roots: u64,
    /// Simulated seconds charged for re-setup + graph re-upload on
    /// adopting GPUs.
    pub reassign_seconds: f64,
    /// GPUs running slowed.
    pub straggler_gpus: u64,
    /// Extra simulated seconds stragglers added to their GPU clocks.
    pub straggler_seconds: f64,
    /// Reduce messages dropped (ack timeout + retransmit).
    pub reduce_drops: u64,
    /// Reduce messages corrupted (checksum mismatch + retransmit).
    pub reduce_corruptions: u64,
    /// Roots the watchdog cancelled on deadline-blowing GPUs and
    /// migrated elsewhere.
    pub watchdog_cancellations: u64,
    /// Simulated seconds the cancelled attempts burned before the
    /// watchdog fired (the deadline budget each cancelled root spent).
    pub watchdog_seconds: f64,
    /// Total simulated seconds the fault schedule added end to end.
    pub added_seconds: f64,
}

impl FaultCounters {
    /// Total injected per-attempt faults.
    pub fn total_faults(&self) -> u64 {
        self.transient_faults + self.oom_faults + self.panics_contained
    }
}

/// splitmix64 — the standard 64-bit finalizer-style mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure() {
        let plan = FaultPlan {
            transient_rate: 0.3,
            oom_rate: 0.1,
            panic_rate: 0.05,
            seed: 42,
            ..FaultPlan::none()
        };
        for gpu in 0..4 {
            for root in 0..50u32 {
                for attempt in 1..4 {
                    assert_eq!(
                        plan.attempt_fault(gpu, root, attempt),
                        plan.attempt_fault(gpu, root, attempt)
                    );
                }
            }
        }
    }

    #[test]
    fn rates_zero_and_one_are_exact() {
        let none = FaultPlan::none();
        assert!(none.is_none());
        for root in 0..100u32 {
            assert_eq!(none.attempt_fault(0, root, 1), None);
        }
        let always = FaultPlan {
            transient_rate: 1.0,
            ..FaultPlan::none()
        };
        for root in 0..100u32 {
            assert_eq!(always.attempt_fault(0, root, 1), Some(FaultKind::Transient));
        }
    }

    #[test]
    fn seeds_change_the_schedule() {
        let a = FaultPlan {
            transient_rate: 0.5,
            seed: 1,
            ..FaultPlan::none()
        };
        let b = FaultPlan {
            seed: 2,
            ..a.clone()
        };
        let schedule = |p: &FaultPlan| -> Vec<bool> {
            (0..200u32)
                .map(|r| p.attempt_fault(0, r, 1).is_some())
                .collect()
        };
        assert_ne!(schedule(&a), schedule(&b));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let plan = FaultPlan::none();
        assert_eq!(plan.backoff_seconds(1), 0.05);
        assert_eq!(plan.backoff_seconds(2), 0.10);
        assert_eq!(plan.backoff_seconds(3), 0.20);
        assert_eq!(plan.backoff_seconds(30), 1.0, "capped");
    }

    #[test]
    fn death_point_scales_with_assignment() {
        let plan = FaultPlan {
            dead_gpus: vec![2],
            death_fraction: 0.5,
            ..FaultPlan::none()
        };
        assert_eq!(plan.death_point(2, 10), Some(5));
        assert_eq!(plan.death_point(2, 3), Some(1));
        assert_eq!(plan.death_point(1, 10), None);
    }

    #[test]
    fn parse_round_trips_every_key() {
        let plan = FaultPlan::parse(
            "seed=7,transient=0.05,oom=0.01,panic=0.02,attempts=3,backoff=0.1,\
             backoff_cap=2.0,dead=1+4,death_fraction=0.3,straggle=0+2,slowdown=2.5,\
             drop=0.1,corrupt=0.2,kill=0.4",
        )
        .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.transient_rate, 0.05);
        assert_eq!(plan.oom_rate, 0.01);
        assert_eq!(plan.panic_rate, 0.02);
        assert_eq!(plan.max_attempts, 3);
        assert_eq!(plan.backoff_base_seconds, 0.1);
        assert_eq!(plan.backoff_cap_seconds, 2.0);
        assert_eq!(plan.dead_gpus, vec![1, 4]);
        assert_eq!(plan.death_fraction, 0.3);
        assert_eq!(plan.straggler_gpus, vec![0, 2]);
        assert_eq!(plan.straggler_slowdown, 2.5);
        assert_eq!(plan.reduce_drop_rate, 0.1);
        assert_eq!(plan.reduce_corrupt_rate, 0.2);
        assert_eq!(plan.kill_fraction, Some(0.4));
        assert!(!plan.is_none());
    }

    #[test]
    fn kill_point_truncates_in_root_order() {
        let plan = FaultPlan {
            kill_fraction: Some(0.5),
            ..FaultPlan::none()
        };
        assert!(!plan.is_none());
        assert_eq!(plan.kill_point(10), Some(5));
        assert_eq!(plan.kill_point(3), Some(1));
        assert_eq!(plan.kill_point(0), Some(0));
        assert_eq!(FaultPlan::none().kill_point(10), None);
        let all = FaultPlan {
            kill_fraction: Some(1.0),
            ..FaultPlan::none()
        };
        assert_eq!(all.kill_point(7), Some(7));
        assert!(FaultPlan::parse("kill=1.5").is_err(), "out of range");
    }

    #[test]
    fn deadline_trigger_follows_straggler_factor() {
        let plan = FaultPlan {
            straggler_gpus: vec![2],
            straggler_slowdown: 8.0,
            ..FaultPlan::none()
        };
        assert!(plan.deadline_exceeded(2, 3.0));
        assert!(!plan.deadline_exceeded(2, 10.0), "within budget");
        assert!(!plan.deadline_exceeded(0, 3.0), "healthy gpu");
        assert!(!FaultPlan::none().deadline_exceeded(0, 1.0));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("nonsense").is_err());
        assert!(FaultPlan::parse("transient=lots").is_err());
        assert!(FaultPlan::parse("unknown_key=1").is_err());
        assert!(FaultPlan::parse("transient=1.5").is_err(), "out of range");
        assert!(
            FaultPlan::parse("slowdown=0.5").is_err(),
            "speedup is not a fault"
        );
        assert!(FaultPlan::parse("attempts=0").is_err());
        assert!(
            FaultPlan::parse("").unwrap().is_none(),
            "empty spec = no faults"
        );
    }

    #[test]
    fn hook_injects_planned_errors() {
        let plan = FaultPlan {
            transient_rate: 1.0,
            ..FaultPlan::none()
        };
        let err = plan.before_attempt(3, 17, 2).unwrap_err();
        assert!(err.is_transient());
        let oom = FaultPlan {
            oom_rate: 1.0,
            ..FaultPlan::none()
        };
        assert!(matches!(
            oom.before_attempt(0, 0, 1),
            Err(SimError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn injected_panic_is_catchable_and_marked() {
        let plan = FaultPlan {
            panic_rate: 1.0,
            ..FaultPlan::none()
        };
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            plan.before_attempt(1, 9, 1)
        }));
        let payload = caught.unwrap_err();
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.starts_with(INJECTED_PANIC_PREFIX));
        assert!(msg.contains("worker 1"));
        assert!(msg.contains("root 9"));
    }

    #[test]
    fn checksum_sees_every_bit() {
        let a = vec![1.0, 2.0, 3.0];
        let mut b = a.clone();
        assert_eq!(score_checksum(&a), score_checksum(&b));
        b[1] = f64::from_bits(b[1].to_bits() ^ 1);
        assert_ne!(score_checksum(&a), score_checksum(&b));
        assert_ne!(score_checksum(&[0.0]), score_checksum(&[-0.0]));
    }

    #[test]
    fn reduce_faults_are_pure_and_rate_bounded() {
        let plan = FaultPlan {
            reduce_drop_rate: 1.0,
            ..FaultPlan::none()
        };
        assert_eq!(plan.reduce_fault(0, 1), Some(ReduceFault::Dropped));
        assert_eq!(plan.reduce_fault(0, 1), plan.reduce_fault(0, 1));
        assert_eq!(FaultPlan::none().reduce_fault(3, 1), None);
    }
}
