//! Strong-scaling sweeps — the machinery behind Figure 6 and
//! Table IV.

use crate::error::ClusterError;
use crate::runner::{run_cluster, ClusterConfig, ClusterReport};
use bc_graph::Csr;
use serde::{Deserialize, Serialize};

/// One point of a strong-scaling curve.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Node count of this run.
    pub nodes: usize,
    /// Full report of the run.
    pub report: ClusterReport,
    /// Speedup over the 1-node configuration.
    pub speedup: f64,
}

/// Run the same problem at every node count in `node_counts`
/// (1 must be included to anchor the speedups) and report speedups.
pub fn strong_scaling(
    g: &Csr,
    base: &ClusterConfig,
    node_counts: &[usize],
    sample_roots: usize,
) -> Result<Vec<ScalingPoint>, ClusterError> {
    assert!(
        node_counts.contains(&1),
        "need the 1-node anchor for speedups"
    );
    let mut points = Vec::with_capacity(node_counts.len());
    let mut t1 = None;
    for &nodes in node_counts {
        let cfg = ClusterConfig {
            nodes,
            ..base.clone()
        };
        let run = run_cluster(g, &cfg, sample_roots)?;
        if nodes == 1 {
            t1 = Some(run.report.total_seconds);
        }
        points.push(ScalingPoint {
            nodes,
            report: run.report,
            speedup: 0.0,
        });
    }
    let t1 = t1.expect("1-node anchor ran");
    for p in points.iter_mut() {
        p.speedup = if p.report.total_seconds > 0.0 {
            t1 / p.report.total_seconds
        } else {
            0.0
        };
    }
    Ok(points)
}

/// Parallel efficiency of a scaling point (speedup / nodes).
pub fn efficiency(p: &ScalingPoint) -> f64 {
    p.speedup / p.nodes as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use bc_core::Method;
    use bc_graph::gen;

    #[test]
    fn speedups_anchor_at_one() {
        let g = gen::triangulated_grid(48, 48, 1);
        let base = ClusterConfig {
            method: Method::WorkEfficient,
            ..ClusterConfig::keeneland(1)
        };
        let pts = strong_scaling(&g, &base, &[1, 2, 4], 64).unwrap();
        assert_eq!(pts[0].nodes, 1);
        assert!((pts[0].speedup - 1.0).abs() < 1e-9);
        // Monotone non-decreasing total time improvement.
        assert!(pts[2].speedup >= pts[1].speedup * 0.9);
        assert!(efficiency(&pts[0]) > 0.99);
    }

    #[test]
    #[should_panic(expected = "anchor")]
    fn missing_anchor_rejected() {
        let g = gen::grid(8, 8);
        let base = ClusterConfig::keeneland(1);
        let _ = strong_scaling(&g, &base, &[2, 4], 8);
    }
}
