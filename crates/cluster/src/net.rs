//! Interconnect and per-run overhead model for the multi-node
//! experiments (Keeneland: three M2090s per node, InfiniBand QDR).

use serde::{Deserialize, Serialize};

/// Cluster interconnect parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// One-way MPI message latency, microseconds.
    pub mpi_latency_us: f64,
    /// MPI point-to-point bandwidth, GB/s (IB QDR ≈ 3.2 GB/s
    /// effective).
    pub mpi_bandwidth_gb_s: f64,
    /// Host↔device copy bandwidth, GB/s (PCIe 2.0 x16 ≈ 6 GB/s).
    pub pcie_gb_s: f64,
    /// Fixed per-GPU job overhead (context creation, allocations,
    /// graph upload, kernel setup), seconds. This is what bends the
    /// paper's Figure 6 away from linear at small problem sizes.
    pub setup_seconds: f64,
    /// How long a rank waits before declaring a reduce message lost
    /// and requesting a retransmission, seconds. Charged once per
    /// dropped message on top of the retransmitted hop.
    pub ack_timeout_seconds: f64,
}

impl NetworkConfig {
    /// Keeneland Initial Delivery System (InfiniBand QDR, PCIe 2.0).
    pub fn keeneland() -> Self {
        NetworkConfig {
            mpi_latency_us: 5.0,
            mpi_bandwidth_gb_s: 3.2,
            pcie_gb_s: 6.0,
            setup_seconds: 0.12,
            ack_timeout_seconds: 0.002,
        }
    }

    /// Time to move `bytes` across one MPI hop.
    pub fn mpi_hop_seconds(&self, bytes: u64) -> f64 {
        self.mpi_latency_us * 1e-6 + bytes as f64 / (self.mpi_bandwidth_gb_s * 1e9)
    }

    /// Time for a binomial-tree `MPI_Reduce` of `bytes` across
    /// `nodes` ranks (Figure 6's final score reduction).
    pub fn reduce_seconds(&self, nodes: usize, bytes: u64) -> f64 {
        if nodes <= 1 {
            return 0.0;
        }
        let depth = (nodes as f64).log2().ceil();
        depth * self.mpi_hop_seconds(bytes)
    }

    /// Device-to-host copy time for `bytes`.
    pub fn d2h_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.pcie_gb_s * 1e9)
    }

    /// Host-to-device copy time for `bytes` (PCIe is symmetric in
    /// this model).
    pub fn h2d_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.pcie_gb_s * 1e9)
    }

    /// Cost of re-homing work after a device loss: a fresh context on
    /// the surviving GPU's queue plus re-uploading the graph arrays
    /// (`graph_bytes`). Charged to each survivor that adopts orphaned
    /// roots from a dead GPU.
    pub fn reassign_seconds(&self, graph_bytes: u64) -> f64 {
        self.setup_seconds + self.h2d_seconds(graph_bytes)
    }

    /// Extra time one dropped reduce message costs: the receiver's
    /// ack timeout plus the retransmitted hop.
    pub fn drop_retry_seconds(&self, bytes: u64) -> f64 {
        self.ack_timeout_seconds + self.mpi_hop_seconds(bytes)
    }

    /// Extra time one corrupted reduce message costs: the checksum
    /// mismatch is detected on arrival (no timeout), so only the
    /// retransmitted hop is charged.
    pub fn corrupt_retry_seconds(&self, bytes: u64) -> f64 {
        self.mpi_hop_seconds(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_reduce_is_free() {
        let n = NetworkConfig::keeneland();
        assert_eq!(n.reduce_seconds(1, 1_000_000), 0.0);
    }

    #[test]
    fn reduce_grows_logarithmically() {
        let n = NetworkConfig::keeneland();
        let r8 = n.reduce_seconds(8, 1_000_000);
        let r64 = n.reduce_seconds(64, 1_000_000);
        assert!((r64 / r8 - 2.0).abs() < 1e-9, "log2(64)/log2(8) = 2");
    }

    #[test]
    fn hop_includes_latency_floor() {
        let n = NetworkConfig::keeneland();
        let tiny = n.mpi_hop_seconds(1);
        assert!(tiny >= 5e-6);
        // 3.2 GB over a 3.2 GB/s link ≈ 1 second.
        let big = n.mpi_hop_seconds(3_200_000_000);
        assert!((big - 1.0).abs() < 0.01);
    }

    #[test]
    fn d2h_uses_pcie() {
        let n = NetworkConfig::keeneland();
        assert!((n.d2h_seconds(6_000_000_000) - 1.0).abs() < 1e-9);
        assert_eq!(n.d2h_seconds(1 << 20), n.h2d_seconds(1 << 20));
    }

    #[test]
    fn reassignment_charges_setup_plus_upload() {
        let n = NetworkConfig::keeneland();
        let bytes = 3_000_000_000u64;
        let expect = n.setup_seconds + n.h2d_seconds(bytes);
        assert!((n.reassign_seconds(bytes) - expect).abs() < 1e-12);
    }

    #[test]
    fn drop_costs_more_than_corruption() {
        // A drop is only noticed at the ack timeout; a corruption is
        // caught by the checksum on arrival.
        let n = NetworkConfig::keeneland();
        let bytes = 1_000_000u64;
        assert!(n.drop_retry_seconds(bytes) > n.corrupt_retry_seconds(bytes));
        assert!(
            (n.drop_retry_seconds(bytes) - n.corrupt_retry_seconds(bytes) - n.ack_timeout_seconds)
                .abs()
                < 1e-12
        );
    }
}
