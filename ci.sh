#!/usr/bin/env bash
# Tier-1 verification plus a bench smoke run.
#
#   ./ci.sh        # build + tests + bench_trajectory smoke
#   ./ci.sh fast   # build + tests only
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

if [[ "${1:-}" != "fast" ]]; then
    # Smoke-scale trajectory: few roots, 2-thread parallel arm. The
    # binary itself asserts bitwise thread-invariance of scores and
    # simulated times on every (graph, method) pair.
    echo "==> bench_trajectory smoke"
    cargo run -q -p bc-bench --release --bin bench_trajectory -- --roots 8 --threads 2
fi

echo "==> ci OK"
