#!/usr/bin/env bash
# Tier-1 verification, the lint gate, the bc-verify suite, and a
# bench smoke run.
#
#   ./ci.sh        # build + tests + lint + verify suite + bench smoke
#   ./ci.sh fast   # build + tests only
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

if [[ "${1:-}" != "fast" ]]; then
    echo "==> cargo fmt --check"
    cargo fmt --all -- --check

    echo "==> cargo clippy -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings

    # Docs gate: rustdoc must build clean (broken intra-doc links and
    # invalid HTML are errors, not noise).
    echo "==> cargo doc -D warnings"
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

    # Static-analysis gate: the kernel-IR race prover (backward sweep
    # and pull discovery race-free for ALL inputs, minimal atomic sets
    # = declared = priced), the exhaustive scheduler-interleaving
    # explorer at the full 4x6 bound, and the spec-vs-trace
    # conformance replay over all ten dataset analogues.
    echo "==> bc-analyze gate"
    cargo run -q -p bc-analyze --release --bin bc-analyze
    # The analyzer's own regression suite: every seeded bug
    # (predecessor-style accumulation, CAS-less dedup, level
    # off-by-one, torn steal, completion-order merge) must be flagged.
    echo "==> bc-analyze mutation battery"
    cargo run -q -p bc-analyze --release --bin bc-analyze -- --mutation-battery --quick

    # Race detector + invariant suite: seeded-bug self-test, the ten
    # dataset analogues, the exact-score identities, and the stage-5
    # metrics-vs-trace counter cross-check.
    echo "==> bc-verify suite"
    cargo run -q -p bc-verify --release --bin bc-verify
    # Smoke-scale trajectory: few roots, 2-thread parallel arm. The
    # binary itself asserts bitwise thread-invariance of scores and
    # simulated times on every (graph, method) pair.
    echo "==> bench_trajectory smoke"
    cargo run -q -p bc-bench --release --bin bench_trajectory -- --roots 8 --threads 2
    # Direction-optimizing smoke: push vs pull vs auto on small
    # graphs; the binary asserts the three modes are bitwise
    # identical at every thread count.
    echo "==> bench_direction smoke"
    cargo run -q -p bc-bench --release --bin bench_direction -- --quick 1 --roots 4
    # Fault-injection smoke: the sweep binary asserts every
    # recoverable fault plan reproduces the fault-free scores bitwise
    # (bc-verify stage 4 covers the same claim at suite scale).
    echo "==> bench_faults smoke"
    cargo run -q -p bc-bench --release --bin bench_faults -- --quick 1
    # CLI fault path: a faulted cluster run must recover, verify, and
    # report its counters.
    echo "==> cluster --faults smoke"
    cargo run -q -p hybrid-bc --release -- --dataset smallworld --reduction 7 \
        --method work-efficient --cluster 2 --roots 16 \
        --faults seed=7,transient=0.2,dead=1,drop=0.3 --top 0 --verify
    # Metrics smoke: the sweep binary asserts metering is bitwise
    # observation-only per (dataset, method) row, and the CLI flag
    # must produce a well-formed JSONL stream on both the
    # single-device and cluster paths.
    echo "==> bench_metrics smoke"
    cargo run -q -p bc-bench --release --bin bench_metrics -- --quick 1
    echo "==> cli --metrics smoke"
    cargo run -q -p hybrid-bc --release -- --dataset smallworld --reduction 7 \
        --method hybrid --roots 16 --metrics results/ci_metrics.jsonl --top 0
    grep -q '"kind":"summary"' results/ci_metrics.jsonl
    cargo run -q -p hybrid-bc --release -- --dataset smallworld --reduction 7 \
        --method work-efficient --cluster 2 --roots 16 \
        --metrics results/ci_metrics_cluster.jsonl --top 0
    grep -q '"kind":"cluster_summary"' results/ci_metrics_cluster.jsonl
    # Scheduler smoke: the bench asserts every schedule reproduces the
    # static scores bitwise; the CLI run exercises the work-stealing
    # path end to end and must emit per-worker records in the JSONL.
    echo "==> bench_schedule smoke"
    cargo run -q -p bc-bench --release --bin bench_schedule -- --quick 1
    echo "==> cli --schedule smoke"
    cargo run -q -p hybrid-bc --release -- --dataset smallworld --reduction 7 \
        --method work-efficient --schedule work-stealing --threads 4 --roots 32 \
        --metrics results/ci_metrics_schedule.jsonl --top 0 --verify
    grep -q '"kind":"worker"' results/ci_metrics_schedule.jsonl
    # Scaling smoke: the bench hard-asserts the degree-relabeling
    # transaction win, the u32->u64 pricing delta, and that a
    # 2M-vertex Kronecker streams through the partitioned cluster
    # path bitwise identical under a recoverable fault plan (where
    # the resident path fails pre-flight with OOM). The CLI run
    # exercises --relabel end to end: scores restored to the original
    # numbering and verified against the unrelabeled graph.
    echo "==> bench_scale smoke"
    cargo run -q -p bc-bench --release --bin bench_scale -- --quick
    echo "==> cli --relabel smoke"
    cargo run -q -p hybrid-bc --release -- --dataset smallworld --reduction 6 \
        --method work-efficient --roots 32 --relabel degree --verify --top 0
    # Durability smoke: the bench kills the durable runner at five
    # points, resumes each from its checkpoint, and hard-asserts the
    # resumed scores are bitwise identical to the uninterrupted run;
    # it also drives both rungs of the graceful-degradation ladder.
    echo "==> bench_durability smoke"
    cargo run -q -p bc-bench --release --bin bench_durability -- --quick 1
    # CLI durability path: kill a checkpointed cluster run mid-flight
    # (exit code 1, structured message), then resume it from the same
    # directory and verify the completed scores.
    echo "==> cli --checkpoint kill/resume smoke"
    rm -rf results/ci_ckpt
    cargo run -q -p hybrid-bc --release -- --dataset smallworld --reduction 7 \
        --method work-efficient --cluster 2 --roots 16 \
        --checkpoint results/ci_ckpt --faults seed=7,kill=0.5 --top 0 \
        && { echo "expected the kill to interrupt the run"; exit 1; } \
        || true
    cargo run -q -p hybrid-bc --release -- --dataset smallworld --reduction 7 \
        --method work-efficient --cluster 2 --roots 16 \
        --checkpoint results/ci_ckpt --faults seed=7 --top 0 --verify
    rm -rf results/ci_ckpt
    # Serving smoke: the bench hard-asserts batched+cached responses
    # are bitwise identical to per-query cold recomputes, that the
    # cache is exercised on every workload, and that coalescing
    # strictly reduces priced device seconds vs the unbatched,
    # uncached baseline (bc-verify stage 8 covers the same claims
    # at suite scale: 27 combos x 10 dataset analogues + the
    # stale-cache mutant).
    echo "==> bench_serve smoke"
    cargo run -q -p bc-bench --release --bin bench_serve -- --quick 1
    # bc-serve request smoke: open-loop traffic with live edits must
    # produce well-formed serve rows.
    echo "==> bc-serve smoke"
    cargo run -q -p bc-serve --release --bin bc-serve -- --dataset smallworld \
        --reduction 8 --requests 12 --edits 2 --metrics results/ci_serve.jsonl
    grep -q '"kind":"serve"' results/ci_serve.jsonl
    # CLI serving path: --serve drives the same server through
    # hybrid-bc and must emit serve rows in the JSONL.
    echo "==> cli --serve smoke"
    cargo run -q -p hybrid-bc --release -- --dataset smallworld --reduction 8 \
        --serve 12 --serve-edits 2 --metrics results/ci_serve_cli.jsonl
    grep -q '"kind":"serve"' results/ci_serve_cli.jsonl
fi

echo "==> ci OK"
