//! Support crate for the runnable examples; see `src/bin/*.rs`:
//!
//! * `quickstart` — every backend on one graph, scores must agree;
//! * `community_detection` — Girvan–Newman via edge betweenness;
//! * `power_grid` — adaptive contingency analysis;
//! * `road_analysis` — exact vs source-sampled approximate BC;
//! * `weighted_roads` — Dijkstra-based weighted BC (§VI future work).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
