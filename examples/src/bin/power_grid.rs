//! Power-grid contingency analysis — another §I application (Jin et
//! al., IPDPS'10): vertices with high betweenness are the buses whose
//! loss most threatens grid connectivity.
//!
//! This example builds a synthetic transmission grid (a sparse planar
//! backbone plus a few long-distance ties), ranks buses by BC, and
//! compares the damage done by targeted removals against degree-
//! targeted and random removals.
//!
//! ```text
//! cargo run -p bc-examples --release --bin power_grid
//! ```

use bc_core::{BcOptions, Method};
use bc_graph::{builder, gen, traversal, Csr, VertexId};

/// Largest-component fraction after deleting `remove` vertices.
fn damage(g: &Csr, remove: &[VertexId]) -> f64 {
    let dead: std::collections::HashSet<VertexId> = remove.iter().copied().collect();
    let kept = g
        .arcs()
        .filter(|&(u, v)| u < v && !dead.contains(&u) && !dead.contains(&v));
    let pruned = Csr::from_undirected_edges(g.num_vertices(), kept);
    let (largest, _) = builder::largest_component(&pruned);
    largest.num_vertices() as f64 / (g.num_vertices() - remove.len()) as f64
}

fn main() {
    // Synthetic transmission grid: real power grids average ~2.7
    // lines per bus, with long radial feeders hanging off a meshed
    // backbone — the road-network generator produces exactly that
    // shape; a few long-distance ties close the backbone loops.
    let base = gen::road_network(1600, 7);
    let nb = base.num_vertices() as u32;
    let mut edges: Vec<(u32, u32)> = base.arcs().filter(|&(u, v)| u < v).collect();
    for i in 0..4u32 {
        edges.push((i * nb / 9 + 1, (i + 3) * nb / 9));
    }
    let full = Csr::from_undirected_edges(nb as usize, edges);
    let (g, _) = builder::largest_component(&full);
    println!(
        "synthetic grid: {} buses, {} lines, diameter ~{}",
        g.num_vertices(),
        g.num_undirected_edges(),
        traversal::diameter_estimate(&g, 4)
    );

    // Rank buses by betweenness using the simulated GPU (sampling
    // method — the grid is high-diameter, so it will stay
    // work-efficient).
    let run = Method::Sampling(Default::default())
        .run(&g, &BcOptions::default())
        .expect("grid fits in device memory");
    println!(
        "BC computed with the {} method: simulated GPU time {:.3}s ({:.1} MTEPS)",
        run.report.method,
        run.report.full_seconds,
        run.report.mteps()
    );

    let mut by_bc: Vec<u32> = (0..g.num_vertices() as u32).collect();
    by_bc.sort_by(|&a, &b| run.scores[b as usize].total_cmp(&run.scores[a as usize]));
    let mut by_degree: Vec<u32> = (0..g.num_vertices() as u32).collect();
    by_degree.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    // "Random": a fixed arbitrary spread.
    let random: Vec<u32> = (0..g.num_vertices() as u32)
        .filter(|v| v % 97 == 3)
        .collect();

    // Adaptive BC attack: recompute BC after every removal — the
    // scenario that makes the paper's fast exact BC valuable (each
    // contingency step needs a fresh O(mn) analysis).
    let max_k = 32usize;
    let mut adaptive: Vec<u32> = Vec::with_capacity(max_k);
    {
        let mut current = g.clone();
        for _ in 0..max_k {
            let scores =
                bc_core::cpu_parallel::betweenness(&current).expect("host workers do not panic");
            let worst = (0..current.num_vertices() as u32)
                .filter(|v| !adaptive.contains(v))
                .max_by(|&a, &b| scores[a as usize].total_cmp(&scores[b as usize]))
                .unwrap();
            adaptive.push(worst);
            let dead: std::collections::HashSet<u32> = adaptive.iter().copied().collect();
            current = Csr::from_undirected_edges(
                g.num_vertices(),
                g.arcs()
                    .filter(|&(u, v)| u < v && !dead.contains(&u) && !dead.contains(&v)),
            );
        }
    }

    println!("\ncontingency: largest-component fraction after removing k buses");
    println!(
        "{:>4}  {:>12}  {:>10}  {:>10}  {:>10}",
        "k", "adaptive BC", "static BC", "by degree", "random"
    );
    for k in [1usize, 2, 4, 8, 16, 32] {
        let ad_dmg = damage(&g, &adaptive[..k]);
        let bc_dmg = damage(&g, &by_bc[..k]);
        let deg_dmg = damage(&g, &by_degree[..k]);
        let rnd_dmg = damage(&g, &random[..k.min(random.len())]);
        println!(
            "{k:>4}  {:>11.1}%  {:>9.1}%  {:>9.1}%  {:>9.1}%",
            ad_dmg * 100.0,
            bc_dmg * 100.0,
            deg_dmg * 100.0,
            rnd_dmg * 100.0
        );
    }
    println!(
        "\nadaptive BC-targeted removals fragment the grid fastest; each step needs a \
         fresh O(mn) BC pass — exactly the workload the paper accelerates."
    );
}
