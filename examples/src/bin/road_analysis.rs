//! Road-network analysis — the "best location of stores within
//! cities" application of §I (Porta et al.): street centrality
//! predicts where activity concentrates.
//!
//! This example builds a luxembourg-class road network, computes
//! exact BC with the work-efficient method (the right strategy for
//! roads), then shows how source-sampled *approximate* BC trades
//! accuracy for time — the adjustment the paper says is trivial
//! (§V-A).
//!
//! ```text
//! cargo run -p bc-examples --release --bin road_analysis
//! ```

use bc_core::{approx, BcOptions, Method};
use bc_graph::{gen, GraphStats};

fn main() {
    let g = gen::road_network(20_000, 11);
    let stats = GraphStats::compute_with_limit(&g, 0);
    println!(
        "road network: {} intersections, {} segments, max degree {}, diameter ~{}",
        stats.vertices, stats.edges, stats.max_degree, stats.diameter
    );

    // Exact BC. Roads are the work-efficient method's home turf; the
    // sampling method would reach the same decision (check it).
    let opts = BcOptions::default();
    let exact_run = Method::Sampling(Default::default())
        .run(&g, &opts)
        .expect("fits");
    assert_eq!(
        exact_run.report.sampling_chose_edge_parallel,
        Some(false),
        "Algorithm 5 must keep the work-efficient method on a road network"
    );
    println!(
        "\nexact BC: simulated GPU time {:.2}s ({:.2} MTEPS); Algorithm 5 kept the \
         work-efficient strategy",
        exact_run.report.full_seconds,
        exact_run.report.mteps()
    );

    let mut ranked: Vec<u32> = (0..g.num_vertices() as u32).collect();
    ranked.sort_by(|&a, &b| exact_run.scores[b as usize].total_cmp(&exact_run.scores[a as usize]));
    println!("\ntop-5 intersections (store/billboard candidates):");
    for &v in ranked.iter().take(5) {
        println!(
            "  intersection {v:>6}: BC {:>12.0}, degree {}",
            exact_run.scores[v as usize],
            g.degree(v)
        );
    }

    // Approximation sweep: how many sampled sources does a stable
    // top-20 need?
    println!("\napproximate BC (source sampling), vs exact:");
    println!(
        "{:>8}  {:>12}  {:>14}  {:>16}",
        "sources", "sim. time", "mean rel err", "top-20 overlap"
    );
    let exact_top: std::collections::HashSet<u32> = ranked[..20].iter().copied().collect();
    let floor = exact_run.scores[ranked[g.num_vertices() / 4] as usize];
    for k in [32usize, 128, 512, 2048] {
        let run = approx::approximate_bc(&g, &Method::WorkEfficient, k, 3, &opts).expect("fits");
        let err = approx::mean_relative_error(&exact_run.scores, &run.scores, floor.max(1.0));
        let mut approx_ranked: Vec<u32> = (0..g.num_vertices() as u32).collect();
        approx_ranked.sort_by(|&a, &b| run.scores[b as usize].total_cmp(&run.scores[a as usize]));
        let overlap = approx_ranked[..20]
            .iter()
            .filter(|v| exact_top.contains(v))
            .count();
        println!(
            "{k:>8}  {:>10.3}s  {:>13.1}%  {overlap:>13}/20",
            run.report.device_seconds,
            err * 100.0
        );
    }
    println!(
        "\na few hundred sources already rank the important intersections correctly, \
         at a small fraction of the exact cost"
    );
}
