//! Community detection via Girvan–Newman — one of the paper's §I
//! motivating applications of betweenness centrality.
//!
//! Girvan–Newman repeatedly removes the edge with the highest edge
//! betweenness; communities fall out as connected components. This
//! example plants communities, recovers them, and scores the
//! recovery.
//!
//! ```text
//! cargo run -p bc-examples --release --bin community_detection
//! ```

use bc_core::brandes;
use bc_graph::{gen, traversal, Csr};

/// Remove the `count` highest-betweenness undirected edges.
fn remove_top_edges(g: &Csr, count: usize) -> Csr {
    let ebc = brandes::edge_betweenness(g);
    // Undirected edge score = sum of both arc scores; collect one
    // entry per undirected edge.
    let mut edges: Vec<(f64, u32, u32)> = Vec::new();
    for u in g.vertices() {
        for (e, &v) in g.edge_range(u).zip(g.neighbors(u)) {
            if u < v {
                // The reverse arc carries the same halved score.
                edges.push((2.0 * ebc[e], u, v));
            }
        }
    }
    edges.sort_by(|a, b| b.0.total_cmp(&a.0));
    let cut: std::collections::HashSet<(u32, u32)> =
        edges.iter().take(count).map(|&(_, u, v)| (u, v)).collect();
    let kept = g.arcs().filter(|&(u, v)| u < v && !cut.contains(&(u, v)));
    Csr::from_undirected_edges(g.num_vertices(), kept)
}

fn main() {
    // Plant 8 communities of 24 vertices, densely connected inside,
    // joined by exactly one bridge each to the next community.
    let k = 8usize;
    let size = 24usize;
    let n = k * size;
    let mut edges = Vec::new();
    for c in 0..k {
        let base = (c * size) as u32;
        let comm = gen::erdos_renyi(size, size * 3, c as u64 + 1);
        edges.extend(
            comm.arcs()
                .filter(|&(u, v)| u < v)
                .map(|(u, v)| (base + u, base + v)),
        );
        // One bridge to the next community (ring of communities).
        let next = (((c + 1) % k) * size) as u32;
        edges.push((base, next));
    }
    let g = Csr::from_undirected_edges(n, edges);
    println!(
        "planted {k} communities of {size} vertices: {} vertices, {} edges",
        g.num_vertices(),
        g.num_undirected_edges()
    );

    // Girvan–Newman: iteratively remove high-eBC edges until the
    // graph splits into k components. Bridges carry all
    // inter-community traffic, so they go first.
    let mut current = g.clone();
    let mut removed = 0usize;
    while traversal::num_components(&current) < k {
        current = remove_top_edges(&current, 1);
        removed += 1;
        if removed > 2 * k {
            break;
        }
    }
    let comps = traversal::connected_components(&current);
    println!(
        "removed {removed} edges -> {} components",
        traversal::num_components(&current)
    );

    // Score recovery: every vertex's component should equal its
    // planted community.
    let mut correct = 0usize;
    for c in 0..k {
        // Majority label of the community's vertices.
        let mut counts = std::collections::HashMap::new();
        for v in 0..size {
            *counts.entry(comps[c * size + v]).or_insert(0usize) += 1;
        }
        correct += counts.values().copied().max().unwrap_or(0);
    }
    let accuracy = correct as f64 / n as f64;
    println!("community recovery accuracy: {:.1}%", accuracy * 100.0);
    assert!(
        accuracy > 0.95,
        "Girvan-Newman should recover planted communities"
    );

    // Show the highest-betweenness edges of the original graph are
    // indeed the bridges.
    let ebc = brandes::edge_betweenness(&g);
    let mut top: Vec<(f64, u32, u32)> = Vec::new();
    for u in g.vertices() {
        for (e, &v) in g.edge_range(u).zip(g.neighbors(u)) {
            if u < v {
                top.push((2.0 * ebc[e], u, v));
            }
        }
    }
    top.sort_by(|a, b| b.0.total_cmp(&a.0));
    println!("\ntop-{k} edges by betweenness (expected: the {k} bridges):");
    for (s, u, v) in top.iter().take(k) {
        let bridge = (u / size as u32) != (v / size as u32);
        println!(
            "  {u:>3} -- {v:<3}  eBC {s:9.1}  {}",
            if bridge { "bridge" } else { "intra" }
        );
    }
}
