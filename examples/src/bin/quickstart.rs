//! Quickstart: compute betweenness centrality on a small-world graph
//! with every backend the library offers — sequential Brandes, the
//! rayon CPU baseline, and all six simulated GPU methods — and show
//! that they agree while costing very different (simulated) time.
//!
//! ```text
//! cargo run -p bc-examples --release --bin quickstart
//! ```

use bc_core::{brandes, cpu_parallel, BcOptions, Method};
use bc_graph::gen;

fn main() {
    // A 2,000-vertex Watts–Strogatz graph: the "smallworld" class of
    // the paper's Table II at toy scale.
    let g = gen::watts_strogatz(2000, 10, 0.1, 42);
    println!(
        "graph: {} vertices, {} undirected edges\n",
        g.num_vertices(),
        g.num_undirected_edges()
    );

    // Ground truth on the host.
    let exact = brandes::betweenness(&g);
    let parallel = cpu_parallel::betweenness(&g).expect("host workers do not panic");
    let max_dev = exact
        .iter()
        .zip(&parallel)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("sequential vs rayon CPU baseline: max |Δ| = {max_dev:.2e}");

    // The five most central vertices.
    let mut ranked: Vec<(u32, f64)> = exact
        .iter()
        .enumerate()
        .map(|(v, &s)| (v as u32, s))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop-5 vertices by betweenness:");
    for (v, s) in ranked.iter().take(5) {
        println!("  vertex {v:>5}: {s:.1}");
    }

    // Every simulated GPU method computes the same scores; the
    // simulated GTX Titan time tells you which strategy you'd want.
    println!(
        "\nsimulated GeForce GTX Titan, exact BC (all {} roots):",
        g.num_vertices()
    );
    println!(
        "{:>16}  {:>12}  {:>10}  {:>12}",
        "method", "sim. time", "MTEPS", "max |Δ|"
    );
    for method in Method::all() {
        match method.run(&g, &BcOptions::default()) {
            Ok(run) => {
                let dev = exact
                    .iter()
                    .zip(&run.scores)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max);
                println!(
                    "{:>16}  {:>10.4}s  {:>10.1}  {:>12.2e}",
                    method.name(),
                    run.report.full_seconds,
                    run.report.mteps(),
                    dev
                );
            }
            Err(e) => println!("{:>16}  failed: {e}", method.name()),
        }
    }
    println!(
        "\n(the hybrid/sampling rows match the best of work-efficient and edge-parallel: \
         that is the paper's contribution)"
    );
}
