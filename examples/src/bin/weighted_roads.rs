//! Weighted betweenness on a road network — the §VI future-work
//! direction (SSSP-based analytics): hop counts treat every road
//! segment as equal, travel times do not, and the central
//! intersections move accordingly.
//!
//! ```text
//! cargo run -p bc-examples --release --bin weighted_roads
//! ```

use bc_core::{brandes, weighted};
use bc_graph::{gen, WeightedCsr};

/// Spearman-style rank agreement of two score vectors over the top
/// `k` of the first.
fn top_k_overlap(a: &[f64], b: &[f64], k: usize) -> usize {
    let rank = |s: &[f64]| {
        let mut idx: Vec<usize> = (0..s.len()).collect();
        idx.sort_by(|&x, &y| s[y].total_cmp(&s[x]));
        idx.truncate(k);
        idx.into_iter().collect::<std::collections::HashSet<_>>()
    };
    rank(a).intersection(&rank(b)).count()
}

fn main() {
    let g = gen::road_network(4_000, 5);
    println!(
        "road network: {} intersections, {} segments",
        g.num_vertices(),
        g.num_undirected_edges()
    );

    // Hop-count (unweighted) BC.
    let hops = brandes::betweenness(&g);

    // Travel-time BC: uniform-ish segments (±20%) — ranks should
    // barely move.
    let mild = WeightedCsr::with_random_weights(g.clone(), 0.9, 1.1, 7);
    let bc_mild = weighted::weighted_betweenness(&mild);

    // Congested city: segment times vary 10x — ranks reshuffle.
    let wild = WeightedCsr::with_random_weights(g.clone(), 1.0, 10.0, 7);
    let bc_wild = weighted::weighted_betweenness(&wild);

    let k = 25;
    println!("\ntop-{k} intersection agreement with hop-count BC:");
    println!(
        "  near-uniform travel times (0.9-1.1x): {:>2}/{k}",
        top_k_overlap(&hops, &bc_mild, k)
    );
    println!(
        "  congested network       (1-10x):      {:>2}/{k}",
        top_k_overlap(&hops, &bc_wild, k)
    );

    // The single most central intersection under each model.
    let argmax = |s: &[f64]| {
        s.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap()
    };
    println!("\nmost central intersection:");
    println!("  hop count:    {}", argmax(&hops));
    println!("  mild weights: {}", argmax(&bc_mild));
    println!("  wild weights: {}", argmax(&bc_wild));
    println!(
        "\nweighted BC needs Dijkstra in place of BFS (Brandes' weighted variant); \
         mapping the paper's hybrid strategies onto it is the future work its §VI names."
    );
}
